"""PASS: learnable attention-based neighbor sampling (Yoon et al., KDD 2021).

Table 2 row: node-wise, dynamic bias, fanout 1-per-draw — "sampling bias
of edges are computed using trainable model parameters".  PASS trains
three projection matrices: W1 and W2 map endpoint features into two
attention spaces whose per-edge inner products give two attention scores,
the uniform-normalized adjacency gives a third, and W3 (softmaxed) mixes
the three into the final sampling bias (Figure 3c of the paper).

The per-edge inner products are SDDMM kernels; the three attention
matrices share ``sub_A``'s topology, so gSampler's Edge-Map fusion
collapses the mixing chain into a single kernel (Figure 5b).

PASS updates its parameters *inside* training, so the paper excludes it
from super-batch sampling; we do the same.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    Algorithm,
    AlgorithmInfo,
    LayeredPipeline,
    compile_layer,
)
from repro.core.matrix import Matrix
from repro.sampler import OptimizationConfig


def pass_layer(A, frontiers, K, features, W1, W2, W3):
    """Figure 3(c) of the paper, with SDDMM for the edge attention."""
    sub_A = A[:, frontiers]
    B = features                    # features of every candidate row node
    C = features[frontiers]         # features of the frontier columns
    A1 = sub_A.sddmm(B @ W1, C @ W1)
    A2 = sub_A.sddmm(B @ W2, C @ W2)
    A3 = sub_A.div(sub_A.sum(axis=1), axis=1)
    mix = W3.softmax()
    att_A = (A1.scale(mix, 0) + A2.scale(mix, 1) + A3.scale(mix, 2)).relu()
    sample_A = sub_A.individual_sample(K, att_A)
    return sample_A, sample_A.row()


class PASS(Algorithm):
    """PASS algorithm factory (holds the trainable projections)."""

    info = AlgorithmInfo(
        name="pass",
        category="node-wise",
        bias="dynamic",
        fanout_gt_one=True,
        description="Attention-biased fanout sampling with trainable weights",
    )

    def __init__(
        self, fanout: int = 10, num_layers: int = 2, dim: int = 16, seed: int = 2023
    ) -> None:
        self.fanout = fanout
        self.num_layers = num_layers
        self.dim = dim
        self.seed = seed
        self.W1: np.ndarray | None = None
        self.W2: np.ndarray | None = None
        self.W3 = np.zeros(3, dtype=np.float32)

    def _init_params(self, feature_dim: int) -> None:
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / np.sqrt(feature_dim)
        self.W1 = (rng.standard_normal((feature_dim, self.dim)) * scale).astype(
            np.float32
        )
        self.W2 = (rng.standard_normal((feature_dim, self.dim)) * scale).astype(
            np.float32
        )

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> LayeredPipeline:
        if features is None:
            raise ValueError("PASS requires node features")
        if self.W1 is None or self.W1.shape[0] != features.shape[1]:
            self._init_params(features.shape[1])
        assert self.W1 is not None and self.W2 is not None
        sampler = compile_layer(
            pass_layer,
            graph,
            example_seeds,
            constants={"K": self.fanout},
            tensors={
                "features": features,
                "W1": self.W1,
                "W2": self.W2,
                "W3": self.W3,
            },
            config=config,
        )

        def tensors_fn() -> dict[str, np.ndarray]:
            assert self.W1 is not None and self.W2 is not None
            return {
                "features": features,
                "W1": self.W1,
                "W2": self.W2,
                "W3": self.W3,
            }

        # PASS updates parameters with training gradients: the paper
        # excludes such algorithms from super-batching.
        return LayeredPipeline(
            [sampler] * self.num_layers,
            tensors_fn=tensors_fn,
            supports_superbatch=False,
        )

    def apply_gradients(
        self,
        g1: np.ndarray,
        g2: np.ndarray,
        g3: np.ndarray,
        lr: float = 1e-3,
    ) -> None:
        """Trainer hook: REINFORCE-style update of the projections."""
        assert self.W1 is not None and self.W2 is not None
        self.W1 = (self.W1 - lr * g1).astype(np.float32)
        self.W2 = (self.W2 - lr * g2).astype(np.float32)
        self.W3 = (self.W3 - lr * g3).astype(np.float32)
