"""DeepWalk: vanilla uniform random walks (Perozzi et al., KDD 2014).

Table 2 row: node-wise, uniform bias, fanout 1 — "uniformly sample a
neighbor of the frontier at each step".  The paper uses walk length 80
following the original configuration.

In the matrix API a walk step is ``A[:, frontier].individual_sample(1)``;
gSampler's Extract-Select fusion turns that into the fused walk-step
kernel, which is what the pipeline below launches directly.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import walks
from repro.algorithms.base import (
    DEFAULT_WALK_LENGTH,
    Algorithm,
    AlgorithmInfo,
    Pipeline,
)
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sampler import OptimizationConfig


def deepwalk_step(A, frontiers, K=1):
    """One walk step in matrix form (the traceable ECSF layer).

    With ``K=1`` GraphSAGE's layer degenerates into a random walk, as the
    paper notes; this function exists to demonstrate that and for the
    LoC/usability benchmark.
    """
    sub_A = A[:, frontiers]
    sample_A = sub_A.individual_sample(K, replace=True)
    return sample_A, sample_A.row()


class DeepWalkPipeline(Pipeline):
    """Runs whole walk batches through the fused walk-step kernel."""

    supports_superbatch = True

    def __init__(self, graph: Matrix, walk_length: int) -> None:
        self.graph = graph
        self.walk_length = walk_length

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> walks.WalkResult:
        return walks.uniform_walk(
            self.graph, seeds, self.walk_length, ctx=ctx, rng=rng
        )

    def sample_superbatch(
        self,
        seed_batches,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> list[walks.WalkResult]:
        # Walks are per-walker independent: super-batching is literal
        # concatenation, sharing every kernel launch across batches.
        sizes = [len(b) for b in seed_batches]
        merged = walks.uniform_walk(
            self.graph,
            np.concatenate([np.asarray(b) for b in seed_batches]),
            self.walk_length,
            ctx=ctx,
            rng=rng,
        )
        out = []
        offset = 0
        for size in sizes:
            out.append(walks.WalkResult(merged.trace[:, offset : offset + size]))
            offset += size
        return out


class DeepWalk(Algorithm):
    """DeepWalk algorithm factory."""

    info = AlgorithmInfo(
        name="deepwalk",
        category="node-wise",
        bias="uniform",
        fanout_gt_one=False,
        description="Vanilla random walk, uniform neighbor per step",
    )

    def __init__(self, walk_length: int = DEFAULT_WALK_LENGTH) -> None:
        self.walk_length = walk_length

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> DeepWalkPipeline:
        return DeepWalkPipeline(graph, self.walk_length)
