"""LABOR variance-reduced neighbor sampling (Balin & Catalyurek, 2023).

LABOR replaces GraphSAGE's independent per-frontier draws with
*correlated* Bernoulli inclusion: every frontier admits each in-edge
with probability ``min(1, K / deg)`` — the same expected fanout — but
all frontiers share one uniform variate per neighbor node, so frontiers
with common neighbors tend to admit the *same* rows.  The union frontier
(and the feature-transfer bytes it drives) shrinks, while Horvitz–
Thompson edge weights ``1 / pi`` keep every aggregation unbiased at the
same per-edge marginals as ``individual_sample``.

Through the Matrix/ECSF lens the program is GraphSAGE's with the Select
operator swapped: extract, skip compute, labor-sample, finalize.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.algorithms.base import (
    DEFAULT_SAGE_FANOUTS,
    Algorithm,
    AlgorithmInfo,
    LayeredPipeline,
    compile_layer,
)
from repro.core.matrix import Matrix
from repro.sampler import OptimizationConfig


def labor_layer(A, frontiers, K):
    """One LABOR layer: shared-coin Bernoulli select over the slice."""
    sub_A = A[:, frontiers]
    sample_A = sub_A.labor_sample(K)
    return sample_A, sample_A.row()


class Labor(Algorithm):
    """LABOR algorithm factory (drop-in for GraphSAGE pipelines)."""

    info = AlgorithmInfo(
        name="labor",
        category="node-wise",
        bias="uniform",
        fanout_gt_one=True,
        description="Correlated-Bernoulli variance-reduced fanout sampling",
    )

    def __init__(self, fanouts: Sequence[int] = DEFAULT_SAGE_FANOUTS) -> None:
        self.fanouts = tuple(fanouts)

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> LayeredPipeline:
        samplers = [
            compile_layer(
                labor_layer,
                graph,
                example_seeds,
                constants={"K": k},
                config=config,
            )
            for k in self.fanouts
        ]
        return LayeredPipeline(samplers, supports_superbatch=True)
