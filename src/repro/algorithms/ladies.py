"""LADIES: layer-dependent importance sampling (Zou et al., NeurIPS 2019).

Table 2 row: layer-wise, dynamic bias — "the sampling bias of a node is
the sum of its squared edge weights to the frontiers; edge weights of the
sampled subgraph are divided by sampling bias".

This is the paper's running example (Figures 2, 3b, 5c): the bias
computation is two lines in matrix form, the select step is a collective
sample over the candidate rows, and the finalize step debiases the edge
weights (divide by the node's selection bias, then normalize each
frontier's column to sum to one).

Under gSampler's passes, ``sub_A ** 2`` is hoisted to a pre-computed
``M = A ** 2`` (pre-processing), and the two finalize operators fuse into
an Edge-MapReduce + Edge-Map pair.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    DEFAULT_LAYER_WIDTH,
    Algorithm,
    AlgorithmInfo,
    LayeredPipeline,
    compile_layer,
)
from repro.core.matrix import Matrix
from repro.sampler import OptimizationConfig


def ladies_layer(A, frontiers, K):
    """Figure 3(b) of the paper (axis conventions per our API docs)."""
    sub_A = A[:, frontiers]
    row_probs = (sub_A ** 2).sum(axis=0)
    sample_A = sub_A.collective_sample(K, row_probs)
    select_probs = row_probs[sample_A.row()]
    sample_A = sample_A.div(select_probs, axis=0)
    sample_A = sample_A.div(sample_A.sum(axis=1), axis=1)
    return sample_A, sample_A.row()


class LADIES(Algorithm):
    """LADIES algorithm factory."""

    info = AlgorithmInfo(
        name="ladies",
        category="layer-wise",
        bias="dynamic",
        fanout_gt_one=True,
        description="Layer-wise sampling biased by squared edge weights",
    )

    def __init__(
        self, layer_width: int = DEFAULT_LAYER_WIDTH, num_layers: int = 3
    ) -> None:
        self.layer_width = layer_width
        self.num_layers = num_layers

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> LayeredPipeline:
        sampler = compile_layer(
            ladies_layer,
            graph,
            example_seeds,
            constants={"K": self.layer_width},
            config=config,
        )
        return LayeredPipeline(
            [sampler] * self.num_layers, supports_superbatch=True
        )
