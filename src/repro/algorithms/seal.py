"""SEAL: enclosing-subgraph extraction for link prediction (Zhang & Chen, 2018).

Table 2 row: node-wise, static bias — "each frontier samples neighbors
with uniform or PPR bias and then induce a subgraph using all the sampled
nodes".  For every candidate link ``(u, v)``, SEAL extracts the h-hop
enclosing subgraph around the pair, induces it, and labels each node with
its Double-Radius Node Labeling (DRNL) — a function of its distances to
``u`` and ``v`` — before handing it to a graph classifier.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.algorithms import walks
from repro.algorithms.base import Algorithm, AlgorithmInfo, Pipeline
from repro.core import new_rng
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sampler import OptimizationConfig
from repro.sparse import INDEX_DTYPE


@dataclasses.dataclass
class SealSample:
    """One enclosing subgraph with DRNL structural labels."""

    pair: tuple[int, int]
    nodes: np.ndarray
    matrix: Matrix
    drnl_labels: np.ndarray


def _hop_neighborhood(
    graph: Matrix,
    roots: np.ndarray,
    hops: int,
    fanout: int,
    ctx: ExecutionContext,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sampled h-hop ball around ``roots``: (nodes, hop-distance)."""
    frontier = np.asarray(roots, dtype=INDEX_DTYPE)
    dist = {int(r): 0 for r in frontier}
    for hop in range(1, hops + 1):
        if len(frontier) == 0:
            break
        with_ctx = Matrix(
            graph.any_storage(), ctx=ctx, is_base_graph=graph.is_base_graph
        )
        sub = with_ctx.slice_cols(frontier)
        sampled = sub.individual_sample(fanout, rng=rng)
        nxt = sampled.row()
        fresh = [int(n) for n in nxt if int(n) not in dist]
        for n in fresh:
            dist[n] = hop
        frontier = np.asarray(fresh, dtype=INDEX_DTYPE)
    nodes = np.fromiter(dist.keys(), dtype=INDEX_DTYPE)
    hops_arr = np.fromiter(dist.values(), dtype=INDEX_DTYPE)
    order = np.argsort(nodes)
    return nodes[order], hops_arr[order]


def drnl_labels(du: np.ndarray, dv: np.ndarray) -> np.ndarray:
    """Double-Radius Node Labeling from distances to the two endpoints."""
    d = du + dv
    labels = 1 + np.minimum(du, dv) + (d // 2) * ((d // 2) + (d % 2) - 1)
    labels[(du == 0) & (dv == 0)] = 1
    return labels.astype(INDEX_DTYPE)


class SEALPipeline(Pipeline):
    """Per-link enclosing-subgraph extraction."""

    supports_superbatch = False

    def __init__(self, graph: Matrix, hops: int, fanout: int) -> None:
        self.graph = graph
        self.hops = hops
        self.fanout = fanout

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> list[SealSample]:
        """``seeds`` is a flat array of node pairs: [u0, v0, u1, v1, ...]."""
        rng = rng if rng is not None else new_rng(None)
        pairs = np.asarray(seeds, dtype=INDEX_DTYPE).reshape(-1, 2)
        out: list[SealSample] = []
        for u, v in pairs:
            nodes_u, du = _hop_neighborhood(
                self.graph, np.array([u]), self.hops, self.fanout, ctx, rng
            )
            nodes_v, dv = _hop_neighborhood(
                self.graph, np.array([v]), self.hops, self.fanout, ctx, rng
            )
            nodes = np.union1d(nodes_u, nodes_v)
            # Distances to u/v over the union (unreached := hops + 1).
            du_full = np.full(len(nodes), self.hops + 1, dtype=INDEX_DTYPE)
            dv_full = np.full(len(nodes), self.hops + 1, dtype=INDEX_DTYPE)
            du_full[np.searchsorted(nodes, nodes_u)] = du
            dv_full[np.searchsorted(nodes, nodes_v)] = dv
            induced = walks.induce_subgraph(self.graph, nodes, ctx=ctx)
            out.append(
                SealSample(
                    pair=(int(u), int(v)),
                    nodes=nodes,
                    matrix=induced,
                    drnl_labels=drnl_labels(du_full, dv_full),
                )
            )
        return out


class SEAL(Algorithm):
    """SEAL algorithm factory."""

    info = AlgorithmInfo(
        name="seal",
        category="node-wise",
        bias="static",
        fanout_gt_one=True,
        description="h-hop enclosing subgraphs with DRNL labels for links",
    )

    def __init__(self, hops: int = 2, fanout: int = 10) -> None:
        self.hops = hops
        self.fanout = fanout

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> SEALPipeline:
        return SEALPipeline(graph, self.hops, self.fanout)
