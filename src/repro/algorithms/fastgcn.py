"""FastGCN: degree-based layer-wise importance sampling (Chen et al., 2018).

Table 2 row: layer-wise, *static* bias — "the sampling bias of a node is
its degree".  FastGCN's importance distribution is q(u) ∝ ||A[:, u]||²,
which for an unweighted graph is the squared degree; because it does not
depend on the frontiers, gSampler's pre-processing pass hoists the whole
bias computation out of the per-batch program (Section 4.2, case 1).

The sampled layer is debiased like LADIES: edge weights are divided by
the selected nodes' bias so the layer estimator stays unbiased.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    DEFAULT_LAYER_WIDTH,
    Algorithm,
    AlgorithmInfo,
    LayeredPipeline,
    compile_layer,
)
from repro.core.matrix import Matrix
from repro.sampler import OptimizationConfig


def fastgcn_layer(A, frontiers, K):
    """One FastGCN layer: static degree² bias, collective sample, debias."""
    sub_A = A[:, frontiers]
    degree = A.sum(axis=0)          # frontier-invariant: hoisted at compile
    node_probs = degree * degree
    sample_A = sub_A.collective_sample(K, node_probs)
    select_probs = node_probs[sample_A.row()]
    sample_A = sample_A.div(select_probs, axis=0)
    return sample_A, sample_A.row()


class FastGCN(Algorithm):
    """FastGCN algorithm factory."""

    info = AlgorithmInfo(
        name="fastgcn",
        category="layer-wise",
        bias="static",
        fanout_gt_one=True,
        description="Layer-wise sampling biased by node degree",
    )

    def __init__(
        self, layer_width: int = DEFAULT_LAYER_WIDTH, num_layers: int = 3
    ) -> None:
        self.layer_width = layer_width
        self.num_layers = num_layers

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> LayeredPipeline:
        sampler = compile_layer(
            fastgcn_layer,
            graph,
            example_seeds,
            constants={"K": self.layer_width},
            config=config,
        )
        return LayeredPipeline(
            [sampler] * self.num_layers, supports_superbatch=True
        )
