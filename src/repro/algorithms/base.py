"""Algorithm abstractions shared by all 15 sampling algorithms.

Every algorithm produces a *pipeline*: an object that samples one
mini-batch of seeds into a :class:`~repro.core.ecsf.GraphSample` (or a
walk matrix for random-walk algorithms).  Two standard pipeline shapes
cover most of Table 2:

* :class:`LayeredPipeline` — a compiled one-layer ECSF program stacked
  over per-layer fanouts (GraphSAGE, LADIES, FastGCN, ...), with optional
  super-batched execution;
* :class:`WalkPipeline` — a sequence of walk-step kernel launches
  (DeepWalk, Node2Vec, PinSAGE, ...), returning a ``(walk_length+1, B)``
  node matrix.

Model-driven algorithms (PASS, AS-GCN, GCN-BS, Thanos) carry trainable
state in ``tensors`` and are excluded from super-batching, as the paper
prescribes.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Callable, Sequence

import numpy as np

from repro.core import GraphSample, SampledLayer, new_rng
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sampler import CompiledSampler, OptimizationConfig, compile_sampler


@dataclasses.dataclass
class AlgorithmInfo:
    """Static facts about an algorithm (the Table 2 row)."""

    name: str
    category: str  # "node-wise" | "layer-wise"
    bias: str  # "uniform" | "static" | "dynamic"
    fanout_gt_one: bool
    description: str


class Pipeline(abc.ABC):
    """A ready-to-run sampler for one algorithm on one graph."""

    supports_superbatch: bool = False

    @abc.abstractmethod
    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> object:
        """Sample one mini-batch of seeds."""

    def sample_superbatch(
        self,
        seed_batches: Sequence[np.ndarray],
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> list[object]:
        """Sample several mini-batches in batched launches (if supported)."""
        raise NotImplementedError(f"{type(self).__name__} has no super-batch path")


class LayeredPipeline(Pipeline):
    """Multi-layer ECSF sampling driven by compiled one-layer programs.

    ``samplers`` holds one compiled program per layer (fanouts are baked
    into each program as trace-time constants, so layers with different
    fanouts are distinct programs — they share the trace and pass
    machinery but not the IR instance).
    """

    def __init__(
        self,
        samplers: Sequence[CompiledSampler],
        *,
        tensors_fn: Callable[[], dict[str, np.ndarray]] | None = None,
        supports_superbatch: bool = True,
        finalize: Callable[[GraphSample, ExecutionContext], GraphSample] | None = None,
    ) -> None:
        self.samplers = list(samplers)
        self.tensors_fn = tensors_fn
        self.supports_superbatch = supports_superbatch
        self.finalize = finalize

    def _tensors(self) -> dict[str, np.ndarray] | None:
        return self.tensors_fn() if self.tensors_fn is not None else None

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> GraphSample:
        rng = rng if rng is not None else new_rng(None)
        frontiers = np.asarray(seeds)
        layers: list[SampledLayer] = []
        tensors = self._tensors()
        for sampler in self.samplers:
            if len(frontiers) == 0:
                break
            matrix, nxt = sampler.run(frontiers, tensors=tensors, ctx=ctx, rng=rng)
            layers.append(
                SampledLayer(
                    matrix=matrix, input_nodes=frontiers, output_nodes=nxt
                )
            )
            frontiers = nxt
        sample = GraphSample(seeds=np.asarray(seeds), layers=layers)
        if self.finalize is not None:
            sample = self.finalize(sample, ctx)
        return sample

    def sample_superbatch(
        self,
        seed_batches: Sequence[np.ndarray],
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> list[GraphSample]:
        if not self.supports_superbatch:
            raise NotImplementedError("this algorithm excludes super-batching")
        rng = rng if rng is not None else new_rng(None)
        tensors = self._tensors()
        frontier_sets = [np.asarray(b) for b in seed_batches]
        per_batch_layers: list[list[SampledLayer]] = [[] for _ in seed_batches]
        for sampler in self.samplers:
            results = sampler.run_superbatch(
                frontier_sets, tensors=tensors, ctx=ctx, rng=rng
            )
            new_frontiers = []
            for i, (matrix, nxt) in enumerate(results):
                per_batch_layers[i].append(
                    SampledLayer(
                        matrix=matrix,
                        input_nodes=frontier_sets[i],
                        output_nodes=nxt,
                    )
                )
                new_frontiers.append(nxt)
            frontier_sets = new_frontiers
        samples = [
            GraphSample(seeds=np.asarray(seed_batches[i]), layers=layers)
            for i, layers in enumerate(per_batch_layers)
        ]
        if self.finalize is not None:
            samples = [self.finalize(s, ctx) for s in samples]
        return samples


#: Fanout list used when an algorithm follows the DGL/PyG GraphSAGE
#: example defaults, as the paper's experiments do.
DEFAULT_SAGE_FANOUTS = (5, 10, 15)
#: Layer width used by the layer-wise algorithms (LADIES/FastGCN/AS-GCN).
DEFAULT_LAYER_WIDTH = 512
#: Walk length for DeepWalk/Node2Vec in the paper's configs.
DEFAULT_WALK_LENGTH = 80


class Algorithm(abc.ABC):
    """Factory: binds an algorithm to a graph, producing a pipeline."""

    info: AlgorithmInfo

    @abc.abstractmethod
    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> Pipeline:
        """Compile the algorithm's pipeline for ``graph``."""


def compile_layer(
    layer_fn: Callable,
    graph: Matrix,
    example_seeds: np.ndarray,
    *,
    constants: dict | None = None,
    tensors: dict[str, np.ndarray] | None = None,
    config: OptimizationConfig | None = None,
) -> CompiledSampler:
    """Thin wrapper over :func:`compile_sampler` with algorithm defaults."""
    return compile_sampler(
        layer_fn,
        graph,
        example_seeds,
        constants=constants,
        tensors=tensors,
        config=config,
    )
