"""HetGNN: heterogeneous neighbor sampling via restart walks (Zhang et al., 2019).

Table 2 row: node-wise, uniform, walk-based — "random walks following a
meta-path (with node/edge types) or using restarts, select top-k visited
neighbors".  HetGNN groups the visited nodes of restarting walks *by node
type* and keeps the top-k per type, so every frontier ends up with a
type-balanced neighborhood.

Node types come from the caller (synthetic types by default, since our
stand-in graphs are homogeneous); each edge type could equally be modeled
as its own sparse matrix, which is how gSampler treats heterogeneous
graphs (Section 4.5).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import walks
from repro.algorithms.base import Algorithm, AlgorithmInfo, Pipeline
from repro.core import GraphSample, SampledLayer, new_rng
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sampler import OptimizationConfig
from repro.sparse import COO, INDEX_DTYPE, to_csc


class HetGNNPipeline(Pipeline):
    """Restart walks + per-type top-k neighbor selection."""

    supports_superbatch = False

    def __init__(
        self,
        graph: Matrix,
        node_types: np.ndarray,
        *,
        num_walks: int,
        walk_length: int,
        restart_prob: float,
        k_per_type: int,
        num_layers: int,
    ) -> None:
        self.graph = graph
        self.node_types = np.asarray(node_types, dtype=INDEX_DTYPE)
        self.num_types = int(self.node_types.max()) + 1 if len(node_types) else 1
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.restart_prob = restart_prob
        self.k_per_type = k_per_type
        self.num_layers = num_layers

    def _one_layer(
        self,
        frontiers: np.ndarray,
        ctx: ExecutionContext,
        rng: np.random.Generator,
    ) -> SampledLayer:
        owner, node, count = walks.restart_walk_visit_counts(
            self.graph,
            frontiers,
            num_walks=self.num_walks,
            walk_length=self.walk_length,
            restart_prob=self.restart_prob,
            ctx=ctx,
            rng=rng,
        )
        # Segment by (frontier, type) so each type contributes its own
        # top-k to the frontier's neighborhood.
        seg = owner * self.num_types + self.node_types[node]
        order = np.argsort(seg, kind="stable")
        keep_sorted = walks.top_k_per_segment(
            seg[order], count[order].astype(np.float64), self.k_per_type
        )
        keep = order[keep_sorted]
        owner, node, count = owner[keep], node[keep], count[keep]
        coo = COO(
            rows=node,
            cols=owner,
            values=count.astype(np.float32),
            shape=(self.graph.shape[0], len(frontiers)),
        )
        matrix = Matrix(
            to_csc(coo),
            col_ids=np.asarray(frontiers, dtype=INDEX_DTYPE),
            ctx=ctx,
        )
        return SampledLayer(
            matrix=matrix,
            input_nodes=np.asarray(frontiers),
            output_nodes=np.unique(node),
        )

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> GraphSample:
        rng = rng if rng is not None else new_rng(None)
        frontiers = np.asarray(seeds)
        layers = []
        for _ in range(self.num_layers):
            if len(frontiers) == 0:
                break
            layer = self._one_layer(frontiers, ctx, rng)
            layers.append(layer)
            frontiers = layer.output_nodes
        return GraphSample(seeds=np.asarray(seeds), layers=layers)


class HetGNN(Algorithm):
    """HetGNN algorithm factory."""

    info = AlgorithmInfo(
        name="hetgnn",
        category="node-wise",
        bias="uniform",
        fanout_gt_one=False,
        description="Restart walks, top-k visited neighbors per node type",
    )

    def __init__(
        self,
        num_types: int = 3,
        num_walks: int = 10,
        walk_length: int = 3,
        restart_prob: float = 0.5,
        k_per_type: int = 5,
        num_layers: int = 2,
    ) -> None:
        self.num_types = num_types
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.restart_prob = restart_prob
        self.k_per_type = k_per_type
        self.num_layers = num_layers

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
        node_types: np.ndarray | None = None,
    ) -> HetGNNPipeline:
        if node_types is None:
            # Synthetic homogeneous stand-in: hash ids into types.
            node_types = np.arange(graph.shape[0]) % self.num_types
        return HetGNNPipeline(
            graph,
            node_types,
            num_walks=self.num_walks,
            walk_length=self.walk_length,
            restart_prob=self.restart_prob,
            k_per_type=self.k_per_type,
            num_layers=self.num_layers,
        )
