"""Node2Vec: second-order biased random walks (Grover & Leskovec, 2016).

Table 2 row: node-wise, *dynamic* bias, fanout 1 — "a neighbor's bias is
1/q, 1/p or 1 based on the previous frontier".  Given the walker sits at
``c`` having arrived from ``p``, a candidate ``x`` gets bias:

* ``1/p_param`` if ``x == p`` (return),
* ``1``        if ``x`` is adjacent to ``p`` (triangle step),
* ``1/q_param`` otherwise (exploration).

Adjacency tests are done against a pre-sorted edge-key table, the same
strategy a GPU kernel would use (binary search in the sorted edge list).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    DEFAULT_WALK_LENGTH,
    Algorithm,
    AlgorithmInfo,
    Pipeline,
)
from repro.algorithms.walks import WalkResult
from repro.core import new_rng
from repro.core.matrix import Matrix
from repro.core.sampling import _segmented_biased_with_replacement, _segments_of
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sampler import OptimizationConfig
from repro.sparse import INDEX_DTYPE
from repro.sparse.formats import gather_ranges

_ITEM = 8


class Node2VecPipeline(Pipeline):
    """Second-order walk driver with vectorized bias computation."""

    supports_superbatch = True

    def __init__(
        self, graph: Matrix, walk_length: int, p: float, q: float
    ) -> None:
        self.graph = graph
        self.walk_length = walk_length
        self.p = p
        self.q = q
        coo = graph.get("coo")
        n = graph.shape[0]
        # Sorted edge keys for O(log E) adjacency membership tests;
        # built once per pipeline (pre-processing, amortized).
        self._edge_keys = np.sort(coo.rows * n + coo.cols)

    def _is_adjacent(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        keys = a * self.graph.shape[0] + b
        pos = np.searchsorted(self._edge_keys, keys)
        pos = np.minimum(pos, len(self._edge_keys) - 1)
        return self._edge_keys[pos] == keys

    def _biased_step(
        self,
        cur: np.ndarray,
        prev: np.ndarray,
        rng: np.random.Generator,
        ctx: ExecutionContext,
    ) -> np.ndarray:
        csc = self.graph.get("csc")
        starts = csc.indptr[cur]
        lengths = csc.indptr[cur + 1] - starts
        flat = gather_ranges(starts, lengths)
        cand = csc.rows[flat]
        prev_per_edge = np.repeat(prev, lengths)
        bias = np.full(len(cand), 1.0 / self.q)
        bias[self._is_adjacent(cand, prev_per_edge)] = 1.0
        bias[cand == prev_per_edge] = 1.0 / self.p
        sub_indptr = np.zeros(len(cur) + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=sub_indptr[1:])
        picks = _segmented_biased_with_replacement(sub_indptr, bias, 1, rng)
        nxt = np.full(len(cur), -1, dtype=INDEX_DTYPE)
        seg = _segments_of(picks, sub_indptr)
        nxt[seg] = cand[picks]
        read = len(cur) * 3 * _ITEM + int(lengths.sum()) * 2 * _ITEM
        ctx.record(
            "node2vec_step",
            bytes_read=read,
            bytes_written=nxt.nbytes,
            flops=float(lengths.sum())
            * np.log2(max(len(self._edge_keys), 2)),  # binary searches
            tasks=max(len(cur), 1),
            graph_bytes=read,
        )
        return nxt

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> WalkResult:
        rng = rng if rng is not None else new_rng(None)
        from repro.core.sampling import uniform_walk_step

        cur = np.asarray(seeds, dtype=INDEX_DTYPE)
        return self._walk(cur, rng, ctx)

    def _walk(
        self,
        cur: np.ndarray,
        rng: np.random.Generator,
        ctx: ExecutionContext,
    ) -> WalkResult:
        from repro.core.sampling import uniform_walk_step
        trace = np.full((self.walk_length + 1, len(cur)), -1, dtype=INDEX_DTYPE)
        trace[0] = cur
        prev = cur
        for step in range(self.walk_length):
            alive = np.flatnonzero(cur >= 0)
            if len(alive) == 0:
                break
            nxt = np.full(len(cur), -1, dtype=INDEX_DTYPE)
            if step == 0:
                # First step has no previous frontier: uniform.
                nxt[alive] = uniform_walk_step(
                    self.graph.get("csc"), cur[alive], rng=rng, ctx=ctx
                )
            else:
                nxt[alive] = self._biased_step(cur[alive], prev[alive], rng, ctx)
            trace[step + 1] = nxt
            prev, cur = cur, nxt
        return WalkResult(trace=trace)

    def sample_superbatch(
        self,
        seed_batches,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> list[WalkResult]:
        # Walkers are independent: concatenate, walk once, split.
        rng = rng if rng is not None else new_rng(None)
        sizes = [len(b) for b in seed_batches]
        merged = self._walk(
            np.concatenate([np.asarray(b, dtype=INDEX_DTYPE) for b in seed_batches]),
            rng,
            ctx,
        )
        out = []
        offset = 0
        for size in sizes:
            out.append(WalkResult(merged.trace[:, offset : offset + size]))
            offset += size
        return out


class Node2Vec(Algorithm):
    """Node2Vec algorithm factory."""

    info = AlgorithmInfo(
        name="node2vec",
        category="node-wise",
        bias="dynamic",
        fanout_gt_one=False,
        description="Second-order walk biased 1/p, 1, 1/q by previous hop",
    )

    def __init__(
        self,
        walk_length: int = DEFAULT_WALK_LENGTH,
        p: float = 2.0,
        q: float = 0.5,
    ) -> None:
        self.walk_length = walk_length
        self.p = p
        self.q = q

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> Node2VecPipeline:
        return Node2VecPipeline(graph, self.walk_length, self.p, self.q)
