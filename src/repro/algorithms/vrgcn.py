"""VR-GCN: variance-reduced neighbor sampling (Chen et al., ICML 2018).

Table 2 row: node-wise, uniform, fanout > 1.  VR-GCN samples a *small*
uniform fanout like GraphSAGE but keeps the estimator unbiased by
control variates on historical activations: each sampled edge is scaled
by the frontier's full neighborhood mass so the sampled aggregation
matches the full aggregation in expectation.

In matrix form the scaling needs the full ``sub_A`` degree *before*
selection — a compute step between extract and select, which is why
Extract-Select fusion does not apply here (the subgraph is genuinely
needed).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.algorithms.base import (
    Algorithm,
    AlgorithmInfo,
    LayeredPipeline,
    compile_layer,
)
from repro.core.matrix import Matrix
from repro.sampler import OptimizationConfig


def vrgcn_layer(A, frontiers, K):
    """Uniform fanout with control-variate edge scaling."""
    sub_A = A[:, frontiers]
    full_mass = sub_A.sum(axis=1)        # per-frontier full neighborhood mass
    sample_A = sub_A.individual_sample(K)
    sampled_mass = sample_A.sum(axis=1)  # per-frontier sampled mass
    # Rescale so each frontier's sampled edges sum to its full mass.
    sample_A = sample_A.div(sampled_mass, axis=1).mul(full_mass, axis=1)
    return sample_A, sample_A.row()


class VRGCN(Algorithm):
    """VR-GCN algorithm factory."""

    info = AlgorithmInfo(
        name="vrgcn",
        category="node-wise",
        bias="uniform",
        fanout_gt_one=True,
        description="Small uniform fanout with variance-reduction scaling",
    )

    def __init__(self, fanouts: Sequence[int] = (2, 2)) -> None:
        self.fanouts = tuple(fanouts)

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> LayeredPipeline:
        samplers = [
            compile_layer(
                vrgcn_layer,
                graph,
                example_seeds,
                constants={"K": k},
                config=config,
            )
            for k in self.fanouts
        ]
        return LayeredPipeline(samplers, supports_superbatch=True)
