"""Registry of the 15 surveyed sampling algorithms (paper Table 2)."""

from __future__ import annotations

from repro.algorithms.asgcn import ASGCN
from repro.algorithms.bandit import GCNBS, Thanos
from repro.algorithms.base import Algorithm
from repro.algorithms.deepwalk import DeepWalk
from repro.algorithms.fastgcn import FastGCN
from repro.algorithms.graphsage import GraphSAGE
from repro.algorithms.graphsaint import GraphSAINT
from repro.algorithms.hetgnn import HetGNN
from repro.algorithms.labor import Labor
from repro.algorithms.ladies import LADIES
from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.pass_attention import PASS
from repro.algorithms.pinsage import PinSAGE
from repro.algorithms.seal import SEAL
from repro.algorithms.shadow import ShaDow
from repro.algorithms.vrgcn import VRGCN
from repro.errors import GSamplerError

_ALGORITHMS: dict[str, type[Algorithm]] = {
    cls.info.name: cls
    for cls in (
        DeepWalk,
        GraphSAINT,
        PinSAGE,
        HetGNN,
        GraphSAGE,
        Labor,
        VRGCN,
        SEAL,
        ShaDow,
        Node2Vec,
        GCNBS,
        Thanos,
        PASS,
        FastGCN,
        ASGCN,
        LADIES,
    )
}

#: The 7 representatives benchmarked in the paper's evaluation.
BENCHMARKED = (
    "deepwalk",
    "node2vec",
    "graphsage",
    "ladies",
    "asgcn",
    "pass",
    "shadow",
)

#: The paper's simple/complex split (Figures 7 vs 8).
SIMPLE = ("deepwalk", "node2vec", "graphsage")
COMPLEX = ("ladies", "asgcn", "pass", "shadow")


def available_algorithms() -> list[str]:
    """All registered algorithm names (the 15 of Table 2)."""
    return sorted(_ALGORITHMS)


def make_algorithm(name: str, **kwargs: object) -> Algorithm:
    """Instantiate an algorithm by name with constructor overrides."""
    try:
        cls = _ALGORITHMS[name.lower()]
    except KeyError:
        raise GSamplerError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]
