"""Shared random-walk machinery for the walk-based algorithms.

DeepWalk, Node2Vec, GraphSAINT, PinSAGE, and HetGNN all build on the same
primitive: repeatedly pick one in-neighbor per walker.  The drivers here
run whole walk batches through the fused walk-step kernel
(:func:`repro.core.sampling.uniform_walk_step`), accumulate the node
matrix, and provide visit counting for restart-based algorithms.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import new_rng, sampling
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sparse import INDEX_DTYPE


@dataclasses.dataclass
class WalkResult:
    """A batch of random walks.

    ``trace[t, w]`` is walker ``w``'s node after ``t`` steps (row 0 is the
    seed); ``-1`` marks walkers stranded at a dead end.
    """

    trace: np.ndarray

    @property
    def walk_length(self) -> int:
        return self.trace.shape[0] - 1

    @property
    def num_walkers(self) -> int:
        return self.trace.shape[1]

    def visited_nodes(self) -> np.ndarray:
        """Unique non-dead nodes touched by any walker."""
        flat = self.trace[self.trace >= 0]
        return np.unique(flat)


def uniform_walk(
    graph: Matrix,
    seeds: np.ndarray,
    walk_length: int,
    *,
    ctx: ExecutionContext = NULL_CONTEXT,
    rng: np.random.Generator | None = None,
) -> WalkResult:
    """Vanilla random walk (DeepWalk's sampler): one kernel per step."""
    rng = rng if rng is not None else new_rng(None)
    csc = graph.get("csc")
    cur = np.asarray(seeds, dtype=INDEX_DTYPE)
    trace = np.full((walk_length + 1, len(cur)), -1, dtype=INDEX_DTYPE)
    trace[0] = cur
    for step in range(walk_length):
        alive = np.flatnonzero(cur >= 0)
        if len(alive) == 0:
            break
        nxt = np.full(len(cur), -1, dtype=INDEX_DTYPE)
        nxt[alive] = sampling.uniform_walk_step(csc, cur[alive], rng=rng, ctx=ctx)
        trace[step + 1] = nxt
        cur = nxt
    return WalkResult(trace=trace)


def restart_walk_visit_counts(
    graph: Matrix,
    frontiers: np.ndarray,
    *,
    num_walks: int,
    walk_length: int,
    restart_prob: float,
    ctx: ExecutionContext = NULL_CONTEXT,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random walks with restart; returns per-(frontier, node) visit counts.

    This is PinSAGE's neighborhood construction: ``num_walks`` walkers per
    frontier, each restarting at its origin with probability
    ``restart_prob``, and every visit to a node is counted toward that
    frontier.  Returns ``(frontier_idx, node, count)`` flat arrays.
    """
    rng = rng if rng is not None else new_rng(None)
    csc = graph.get("csc")
    frontiers = np.asarray(frontiers, dtype=INDEX_DTYPE)
    n_frontiers = len(frontiers)
    origins = np.repeat(frontiers, num_walks)
    owner = np.repeat(
        np.arange(n_frontiers, dtype=INDEX_DTYPE), num_walks
    )
    cur = origins.copy()
    visit_keys: list[np.ndarray] = []
    n = graph.shape[0]
    for _ in range(walk_length):
        alive = np.flatnonzero(cur >= 0)
        if len(alive) == 0:
            break
        stepped = sampling.uniform_walk_step(csc, cur[alive], rng=rng, ctx=ctx)
        nxt = np.full(len(cur), -1, dtype=INDEX_DTYPE)
        nxt[alive] = stepped
        restart = rng.random(len(cur)) < restart_prob
        nxt[restart] = origins[restart]
        dead = nxt < 0
        nxt[dead] = origins[dead]  # stranded walkers restart too
        cur = nxt
        visit_keys.append(owner * n + cur)
    if not visit_keys:
        empty = np.empty(0, dtype=INDEX_DTYPE)
        return empty, empty, empty
    keys = np.concatenate(visit_keys)
    uniq, counts = np.unique(keys, return_counts=True)
    return (
        (uniq // n).astype(INDEX_DTYPE),
        (uniq % n).astype(INDEX_DTYPE),
        counts.astype(INDEX_DTYPE),
    )


def top_k_per_segment(
    segment: np.ndarray, score: np.ndarray, k: int
) -> np.ndarray:
    """Indices of the ``k`` highest-scored items within every segment.

    ``segment`` must be sorted ascending (as returned by the visit
    counter).  Used to pick the top-T visited neighbors in PinSAGE and
    the per-type top-k in HetGNN.
    """
    if len(segment) == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    order = np.lexsort((-score, segment))
    seg_sorted = segment[order]
    # Rank of each item within its segment after sorting by -score.
    boundaries = np.flatnonzero(np.diff(seg_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    seg_start_of = np.repeat(starts, np.diff(np.concatenate([starts, [len(seg_sorted)]])))
    rank = np.arange(len(seg_sorted)) - seg_start_of
    return order[rank < k]


def induce_subgraph(
    graph: Matrix,
    nodes: np.ndarray,
    *,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> Matrix:
    """The subgraph of ``graph`` induced by ``nodes`` (rows and columns).

    GraphSAINT, SEAL, and ShaDow all finish with an induced subgraph; with
    the matrix API it is simply a column slice followed by a row slice.
    """
    nodes = np.asarray(nodes, dtype=INDEX_DTYPE)
    with_ctx = Matrix(
        graph.any_storage(),
        row_ids=graph.row_ids,
        col_ids=graph.col_ids,
        ctx=ctx,
        is_base_graph=graph.is_base_graph,
    )
    return with_ctx[nodes, nodes]
