"""AS-GCN: adaptive layer-wise sampling (Huang et al., NeurIPS 2018).

Table 2 row: layer-wise, dynamic bias — "sampling bias of edges are
computed using a trainable model updated by gradients".  AS-GCN learns a
linear scorer ``g(x) = relu(x @ w_att)`` over node features; a candidate
node's importance combines its learned score with its (weighted)
connectivity to the current frontiers, and sampled layers are debiased by
the selection probability.

The scorer weights are *trainable state*: the pipeline reads them from a
parameter store each batch, so a trainer can update them between batches.
Like PASS, this marks the algorithm model-driven — but since AS-GCN's
update happens between batches (not inside the sample), the paper still
super-batches it; we follow suit.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    DEFAULT_LAYER_WIDTH,
    Algorithm,
    AlgorithmInfo,
    LayeredPipeline,
    compile_layer,
)
from repro.core.matrix import Matrix
from repro.sampler import OptimizationConfig


def asgcn_layer(A, frontiers, K, features, w_att):
    """One AS-GCN layer: learned score x connectivity, then debias."""
    sub_A = A[:, frontiers]
    scores = (features @ w_att).relu() + 0.01   # per-node learned importance
    connectivity = sub_A.sum(axis=0)            # candidate-to-frontier mass
    node_probs = connectivity * scores
    sample_A = sub_A.collective_sample(K, node_probs)
    select_probs = node_probs[sample_A.row()]
    sample_A = sample_A.div(select_probs, axis=0)
    return sample_A, sample_A.row()


class ASGCN(Algorithm):
    """AS-GCN algorithm factory."""

    info = AlgorithmInfo(
        name="asgcn",
        category="layer-wise",
        bias="dynamic",
        fanout_gt_one=True,
        description="Adaptive layer-wise sampling with a learned scorer",
    )

    def __init__(
        self,
        layer_width: int = DEFAULT_LAYER_WIDTH,
        num_layers: int = 3,
        seed: int = 2023,
    ) -> None:
        self.layer_width = layer_width
        self.num_layers = num_layers
        self.seed = seed
        self.w_att: np.ndarray | None = None

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> LayeredPipeline:
        if features is None:
            raise ValueError("AS-GCN requires node features")
        rng = np.random.default_rng(self.seed)
        if self.w_att is None or self.w_att.shape != (features.shape[1],):
            self.w_att = rng.standard_normal(features.shape[1]).astype(
                np.float32
            ) * 0.1
        sampler = compile_layer(
            asgcn_layer,
            graph,
            example_seeds,
            constants={"K": self.layer_width},
            tensors={"features": features, "w_att": self.w_att},
            config=config,
        )

        def tensors_fn() -> dict[str, np.ndarray]:
            assert self.w_att is not None
            return {"features": features, "w_att": self.w_att}

        return LayeredPipeline(
            [sampler] * self.num_layers,
            tensors_fn=tensors_fn,
            supports_superbatch=True,
        )

    def apply_gradient(self, grad: np.ndarray, lr: float = 1e-3) -> None:
        """Trainer hook: update the scorer between batches."""
        assert self.w_att is not None
        self.w_att = (self.w_att - lr * grad.astype(np.float32)).astype(np.float32)
