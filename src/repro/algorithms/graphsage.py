"""GraphSAGE neighbor sampling (Hamilton et al., NeurIPS 2017).

Table 2 row: node-wise, uniform bias, fanout > 1 — "each frontier
independently and uniformly samples fanout neighbors".  This is the
canonical simple algorithm of the paper (Figure 3a): extract, skip
compute, individual-sample, finalize.  The experiments use 3 layers with
fanouts (5, 10, 15) and batch size 1024, matching the DGL/PyG examples.

gSampler's Extract-Select fusion collapses the two operators into a
single kernel that samples straight from the graph's CSC — the dominant
optimization in Figure 10's GraphSAGE columns.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.algorithms.base import (
    DEFAULT_SAGE_FANOUTS,
    Algorithm,
    AlgorithmInfo,
    LayeredPipeline,
    compile_layer,
)
from repro.core.matrix import Matrix
from repro.sampler import OptimizationConfig


def graphsage_layer(A, frontiers, K):
    """Figure 3(a) of the paper, verbatim."""
    sub_A = A[:, frontiers]
    sample_A = sub_A.individual_sample(K)
    return sample_A, sample_A.row()


class GraphSAGE(Algorithm):
    """GraphSAGE algorithm factory."""

    info = AlgorithmInfo(
        name="graphsage",
        category="node-wise",
        bias="uniform",
        fanout_gt_one=True,
        description="Uniform per-frontier fanout sampling",
    )

    def __init__(self, fanouts: Sequence[int] = DEFAULT_SAGE_FANOUTS) -> None:
        self.fanouts = tuple(fanouts)

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> LayeredPipeline:
        samplers = [
            compile_layer(
                graphsage_layer,
                graph,
                example_seeds,
                constants={"K": k},
                config=config,
            )
            for k in self.fanouts
        ]
        return LayeredPipeline(samplers, supports_superbatch=True)
