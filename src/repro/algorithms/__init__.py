"""The 15 graph-sampling algorithms surveyed in Table 2 of the paper."""

from repro.algorithms.asgcn import ASGCN, asgcn_layer
from repro.algorithms.bandit import BanditPipeline, GCNBS, Thanos
from repro.algorithms.base import (
    Algorithm,
    AlgorithmInfo,
    LayeredPipeline,
    Pipeline,
)
from repro.algorithms.deepwalk import DeepWalk, deepwalk_step
from repro.algorithms.fastgcn import FastGCN, fastgcn_layer
from repro.algorithms.graphsage import GraphSAGE, graphsage_layer
from repro.algorithms.graphsaint import GraphSAINT, SaintSample
from repro.algorithms.hetgnn import HetGNN
from repro.algorithms.ladies import LADIES, ladies_layer
from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.pass_attention import PASS, pass_layer
from repro.algorithms.pinsage import PinSAGE
from repro.algorithms.registry import (
    BENCHMARKED,
    COMPLEX,
    SIMPLE,
    available_algorithms,
    make_algorithm,
)
from repro.algorithms.seal import SEAL, SealSample, drnl_labels
from repro.algorithms.shadow import ShaDow, ShadowSample
from repro.algorithms.vrgcn import VRGCN, vrgcn_layer
from repro.algorithms.walks import WalkResult, induce_subgraph, uniform_walk

__all__ = [
    "ASGCN",
    "BENCHMARKED",
    "COMPLEX",
    "SIMPLE",
    "Algorithm",
    "AlgorithmInfo",
    "BanditPipeline",
    "DeepWalk",
    "FastGCN",
    "GCNBS",
    "GraphSAGE",
    "GraphSAINT",
    "HetGNN",
    "LADIES",
    "LayeredPipeline",
    "Node2Vec",
    "PASS",
    "PinSAGE",
    "Pipeline",
    "SEAL",
    "SaintSample",
    "SealSample",
    "ShaDow",
    "ShadowSample",
    "Thanos",
    "VRGCN",
    "WalkResult",
    "asgcn_layer",
    "available_algorithms",
    "deepwalk_step",
    "drnl_labels",
    "fastgcn_layer",
    "graphsage_layer",
    "induce_subgraph",
    "ladies_layer",
    "make_algorithm",
    "pass_layer",
    "uniform_walk",
    "vrgcn_layer",
]
