"""Synthetic datasets standing in for the paper's OGB/SNAP graphs."""

from repro.datasets.catalog import Dataset, available_datasets, load_dataset
from repro.datasets.synthetic import (
    block_features,
    dedupe_edges,
    random_edge_weights,
    random_features,
    rmat_edges,
    sbm_edges,
    symmetrize,
)

__all__ = [
    "Dataset",
    "available_datasets",
    "block_features",
    "dedupe_edges",
    "load_dataset",
    "random_edge_weights",
    "random_features",
    "rmat_edges",
    "sbm_edges",
    "symmetrize",
]
