"""Synthetic graph generators.

The paper evaluates on LiveJournal, Ogbn-Products, Ogbn-Papers100M, and
Friendster — none of which can be downloaded in this offline environment,
so we generate laptop-scale stand-ins whose *shape characteristics* drive
the same effects the paper observes:

* **RMAT** (recursive matrix) graphs reproduce the skewed, power-law
  degree distributions of social networks (LJ, FS, PP).  Skew is what
  makes hot-node caching effective for UVA access and what produces load
  imbalance in vertex-centric baselines.
* **SBM** (stochastic block model) graphs carry planted communities, so
  node classification has learnable structure — needed for the accuracy
  columns of Tables 1 and 8 (the PD stand-in).

All generators are fully vectorized and deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse import INDEX_DTYPE


def rmat_edges(
    scale: int,
    edge_factor: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate an RMAT edge list with ``2**scale`` nodes.

    The classic Graph500 parameters (a=0.57, b=c=0.19, d=0.05) give a
    heavy-tailed degree distribution.  Returns ``(src, dst)`` arrays of
    length ``edge_factor * 2**scale``.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ShapeError("rmat probabilities must sum to at most 1")
    rng = np.random.default_rng(seed)
    n_edges = edge_factor * (1 << scale)
    src = np.zeros(n_edges, dtype=INDEX_DTYPE)
    dst = np.zeros(n_edges, dtype=INDEX_DTYPE)
    for level in range(scale):
        r = rng.random(n_edges)
        # Quadrant boundaries: [0,a) TL, [a,a+b) TR, [a+b,a+b+c) BL, rest BR.
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        src = (src << 1) | go_down.astype(INDEX_DTYPE)
        dst = (dst << 1) | go_right.astype(INDEX_DTYPE)
    return src, dst


def sbm_edges(
    num_nodes: int,
    num_blocks: int,
    avg_degree: float,
    *,
    intra_fraction: float = 0.85,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stochastic block model: ``(src, dst, block_of_node)``.

    ``intra_fraction`` of the edges connect nodes within the same block;
    the rest are uniform across blocks.  Sampling-based GNNs can recover
    the planted blocks with high accuracy, which is what the end-to-end
    experiments need.
    """
    rng = np.random.default_rng(seed)
    blocks = rng.integers(0, num_blocks, size=num_nodes).astype(INDEX_DTYPE)
    n_edges = int(num_nodes * avg_degree)
    n_intra = int(n_edges * intra_fraction)
    # Intra-block edges: pick a source, then a random node in its block.
    order = np.argsort(blocks, kind="stable")
    sorted_blocks = blocks[order]
    block_start = np.searchsorted(sorted_blocks, np.arange(num_blocks))
    block_end = np.searchsorted(sorted_blocks, np.arange(num_blocks), side="right")
    src_intra = rng.integers(0, num_nodes, size=n_intra).astype(INDEX_DTYPE)
    b_of_src = blocks[src_intra]
    width = np.maximum(block_end[b_of_src] - block_start[b_of_src], 1)
    offset = np.floor(rng.random(n_intra) * width).astype(INDEX_DTYPE)
    dst_intra = order[block_start[b_of_src] + offset]
    # Inter-block edges: uniform pairs.
    n_inter = n_edges - n_intra
    src_inter = rng.integers(0, num_nodes, size=n_inter).astype(INDEX_DTYPE)
    dst_inter = rng.integers(0, num_nodes, size=n_inter).astype(INDEX_DTYPE)
    src = np.concatenate([src_intra, src_inter])
    dst = np.concatenate([dst_intra, dst_inter])
    return src, dst, blocks


def symmetrize(
    src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Create two directed edges per undirected edge (as the paper does
    for the undirected PD and FS graphs)."""
    return (
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
    )


def dedupe_edges(
    src: np.ndarray, dst: np.ndarray, num_nodes: int, *, drop_self_loops: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Remove duplicate edges (and optionally self loops)."""
    key = src * num_nodes + dst
    _, idx = np.unique(key, return_index=True)
    src, dst = src[idx], dst[idx]
    if drop_self_loops:
        mask = src != dst
        src, dst = src[mask], dst[mask]
    return src, dst


def random_features(
    num_nodes: int, dim: int, *, seed: int = 0
) -> np.ndarray:
    """Random float32 node features (the paper generates 128-dim features
    for LJ and FS, which ship without any)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((num_nodes, dim)).astype(np.float32)


def block_features(
    blocks: np.ndarray,
    num_blocks: int,
    dim: int,
    *,
    noise: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Features carrying a noisy imprint of the planted block.

    Each block has a random prototype vector; node features are the
    prototype plus Gaussian noise.  This gives the classifier a learnable
    signal both through features and through graph structure.
    """
    rng = np.random.default_rng(seed)
    prototypes = rng.standard_normal((num_blocks, dim)).astype(np.float32)
    feats = prototypes[blocks] + noise * rng.standard_normal(
        (len(blocks), dim)
    ).astype(np.float32)
    return feats.astype(np.float32)


def random_edge_weights(num_edges: int, *, seed: int = 0) -> np.ndarray:
    """Uniform (0, 1] edge weights (LADIES/AS-GCN need weighted graphs)."""
    rng = np.random.default_rng(seed)
    return (1.0 - rng.random(num_edges)).astype(np.float32)
