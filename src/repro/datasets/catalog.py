"""The dataset catalog: laptop-scale stand-ins for the paper's graphs.

Table 6 of the paper:

=============== ===== ====== ====== ==========
Dataset         Abbr.   |V|    |E|   Placement
=============== ===== ====== ====== ==========
LiveJournal      LJ      5M    69M   GPU memory
Ogbn-Products    PD    2.5M   126M   GPU memory
Ogbn-Papers100M  PP    111M   1.6B   CPU memory (UVA)
Friendster       FS     65M   1.8B   CPU memory (UVA)
=============== ===== ====== ====== ==========

Our stand-ins keep the *relative* characteristics that drive the paper's
results — PD has by far the largest average degree (~50 vs ~14), PP and
FS are the large host-resident graphs accessed over UVA, FS samples only
1% of its nodes as frontiers — at ~1/200 scale so every benchmark runs in
seconds.  A global ``scale`` knob grows them when more fidelity is wanted.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.core.matrix import Matrix, from_edges
from repro.datasets import synthetic
from repro.errors import ShapeError


@dataclasses.dataclass
class Dataset:
    """A loaded graph with features/labels and placement metadata."""

    name: str
    graph: Matrix
    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    train_ids: np.ndarray
    #: False for the paper's PP/FS: graph stays in host memory, GPU
    #: kernels reach it via UVA.
    graph_on_device: bool

    @property
    def num_nodes(self) -> int:
        return self.graph.shape[0]

    @property
    def num_edges(self) -> int:
        return self.graph.nnz


@dataclasses.dataclass(frozen=True)
class _Spec:
    generator: str  # "rmat" | "sbm"
    scale_or_nodes: int
    edge_factor: int
    symmetric: bool
    on_device: bool
    frontier_fraction: float
    num_classes: int
    feature_dim: int


_SPECS: dict[str, _Spec] = {
    # LJ: directed social graph, moderate degree (~14).
    "lj": _Spec("rmat", 15, 13, False, True, 1.0, 16, 32),
    # PD: undirected co-purchase graph, the *highest* average degree
    # (~50) — the property behind gSampler's smaller speedups on PD.
    # SBM so node classification is learnable (Tables 1/8).
    "pd": _Spec("sbm", 12_000, 25, True, True, 1.0, 16, 32),
    # PP: the big host-resident citation graph (UVA access path).
    "pp": _Spec("rmat", 17, 7, False, False, 1.0, 16, 32),
    # FS: the biggest graph; the paper samples 1% of nodes as frontiers.
    "fs": _Spec("rmat", 16, 14, True, False, 0.01, 16, 32),
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_SPECS)


@functools.lru_cache(maxsize=8)
def load_dataset(name: str, scale: float = 1.0, seed: int = 2023) -> Dataset:
    """Build (and cache) one of the stand-in datasets.

    ``scale`` multiplies node and edge counts; 1.0 is the laptop default
    documented above.
    """
    try:
        spec = _SPECS[name.lower()]
    except KeyError:
        raise ShapeError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    rng = np.random.default_rng(seed)
    blocks = None
    if spec.generator == "rmat":
        rmat_scale = spec.scale_or_nodes + max(0, int(np.log2(max(scale, 1e-9))))
        num_nodes = 1 << rmat_scale
        src, dst = synthetic.rmat_edges(
            rmat_scale, spec.edge_factor, seed=seed
        )
    else:
        num_nodes = int(spec.scale_or_nodes * scale)
        src, dst, blocks = synthetic.sbm_edges(
            num_nodes, spec.num_classes, float(spec.edge_factor), seed=seed
        )
    if spec.symmetric:
        src, dst = synthetic.symmetrize(src, dst)
    src, dst = synthetic.dedupe_edges(src, dst, num_nodes)
    weights = synthetic.random_edge_weights(len(src), seed=seed + 1)
    graph = from_edges(src, dst, num_nodes, weights=weights)

    if blocks is not None:
        labels = blocks
        features = synthetic.block_features(
            blocks, spec.num_classes, spec.feature_dim, seed=seed + 2
        )
    else:
        # Structure-free labels: hash the node id into classes. Accuracy
        # on these is near-chance, which is fine — the RMAT datasets are
        # used for sampling-speed experiments, not accuracy.
        labels = (np.arange(num_nodes) % spec.num_classes).astype(np.int64)
        features = synthetic.random_features(
            num_nodes, spec.feature_dim, seed=seed + 2
        )
    n_train = max(1, int(num_nodes * spec.frontier_fraction))
    train_ids = rng.choice(num_nodes, size=n_train, replace=False).astype(np.int64)
    return Dataset(
        name=name.lower(),
        graph=graph,
        features=features,
        labels=labels,
        num_classes=spec.num_classes,
        train_ids=np.sort(train_ids),
        graph_on_device=spec.on_device,
    )
