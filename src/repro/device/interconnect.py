"""Interconnect link specs: the wires between simulated devices.

Multi-replica serving (``repro.serve.cluster``) places one replica per
simulated device.  When the graph is partitioned across replicas, a
batch routed to its seed shard still samples frontier nodes owned by
*other* shards; those rows must cross a device-to-device link before the
feature fetch can complete.  This module prices that hop the same way
:class:`~repro.device.spec.DeviceSpec` prices a kernel launch — an
analytical model with a per-transfer latency plus a bandwidth term:

    transfer_time(n bytes) = latency + n / bandwidth

Two built-in links mirror the hardware of the paper's testbed
(registered alongside the device specs, with the same ``get_*`` lookup
contract as :func:`~repro.device.spec.get_device`):

* **nvlink** — NVLink 2.0 between V100s (DGX-style): ~150 GB/s per
  direction, sub-microsecond-ish latency;
* **pcie** — PCIe 3.0 x16, the T4/host fallback: ~12 GB/s effective
  (matching ``DeviceSpec.pcie_bandwidth``), higher per-transfer setup
  cost.

The point the cluster benchmark makes is the *ratio*: a partitioned
deployment on PCIe pays ~12x more per cross-shard byte than on NVLink,
so the routing policy that minimizes cross-shard frontier traffic wins
by a wider margin on the slower link.
"""

from __future__ import annotations

import dataclasses

from repro.errors import DeviceError


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """An analytical model of one device-to-device interconnect."""

    name: str
    #: Sustained bandwidth in bytes/second (per direction).
    bandwidth: float
    #: Fixed per-transfer cost in seconds (handshake, doorbell, DMA setup).
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0.0:
            raise DeviceError(
                f"{self.name}: link bandwidth must be positive, "
                f"got {self.bandwidth}"
            )
        if self.latency < 0.0:
            raise DeviceError(
                f"{self.name}: link latency must be non-negative, "
                f"got {self.latency}"
            )

    def transfer_time(self, nbytes: float) -> float:
        """Simulated seconds to move ``nbytes`` over this link.

        Zero-byte transfers cost nothing — callers skip the hop entirely
        rather than paying latency for an empty message.
        """
        if nbytes < 0.0:
            raise DeviceError(
                f"{self.name}: cannot transfer {nbytes} bytes"
            )
        if nbytes == 0.0:
            return 0.0
        return self.latency + nbytes / self.bandwidth

    def bulk_transfer_time(
        self, nbytes: float, *, chunk_bytes: float = 64 * 2**20
    ) -> float:
        """Simulated seconds to *stream* ``nbytes`` in bounded chunks.

        Re-replication (a revived or newly activated replica pulling its
        shard, or its warm cache rows, from a peer) does not move one
        giant message: real stacks pipeline bounded DMA chunks, paying
        the per-transfer setup once per chunk.  Modeled as

            ceil(nbytes / chunk_bytes) * latency + nbytes / bandwidth

        which degrades to :meth:`transfer_time` for ``nbytes`` at or
        under one chunk.
        """
        if nbytes < 0.0:
            raise DeviceError(
                f"{self.name}: cannot transfer {nbytes} bytes"
            )
        if chunk_bytes <= 0.0:
            raise DeviceError(
                f"{self.name}: chunk size must be positive, got {chunk_bytes}"
            )
        if nbytes == 0.0:
            return 0.0
        chunks = int(-(-nbytes // chunk_bytes))
        return chunks * self.latency + nbytes / self.bandwidth


#: NVLink 2.0 (V100 generation): 150 GB/s per direction, ~2 us effective
#: per-transfer overhead once the software stack is counted.
NVLINK = LinkSpec(name="nvlink", bandwidth=150e9, latency=2e-6)

#: PCIe 3.0 x16: ~12 GB/s effective (the same figure the device specs use
#: for UVA traffic), ~5 us per-transfer setup.
PCIE = LinkSpec(name="pcie", bandwidth=12e9, latency=5e-6)

_REGISTRY = {spec.name: spec for spec in (NVLINK, PCIE)}

#: Which link a multi-device deployment of each device spec would use:
#: V100s ship on NVLink-connected boards (DGX/p3.16xlarge, the paper's
#: testbed); T4s and the host CPU talk over PCIe.
DEFAULT_DEVICE_LINKS = {"v100": "nvlink", "t4": "pcie", "cpu": "pcie"}


def get_link(name: str) -> LinkSpec:
    """Look up a built-in link spec by name (``nvlink``, ``pcie``)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise DeviceError(
            f"unknown link {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def p2p_cheaper_than_host(link: LinkSpec, device) -> bool:
    """Is a peer-HBM fetch over ``link`` cheaper than host DRAM?

    The tiered feature store's p2p decision rule.  The host path is not
    raw PCIe: UVA reads of hot rows hit the device-side access cache, so
    the *effective* per-byte cost of a host-tier row is
    ``(1 - uva_cache_hit_rate) / pcie_bandwidth`` (on a V100, 12 GB/s
    raw becomes ~26.7 GB/s effective).  Peer HBM over the link wins only
    when the link's per-byte cost beats that — true for NVLink
    (150 GB/s), false for a PCIe-switched peer (12 GB/s), which is why
    ``--p2p`` is a no-op on PCIe-wired clusters rather than a slowdown.
    """
    discount = 1.0 - device.uva_cache_hit_rate
    if discount <= 0.0:
        return False  # host reads are effectively free; peer can't win
    host_per_byte = discount / device.pcie_bandwidth
    return 1.0 / link.bandwidth < host_per_byte


def default_link_for(device_name: str) -> LinkSpec:
    """The link a cluster of ``device_name`` devices is wired with."""
    try:
        return get_link(DEFAULT_DEVICE_LINKS[device_name.lower()])
    except KeyError:
        raise DeviceError(
            f"no default interconnect for device {device_name!r}; "
            f"known devices: {sorted(DEFAULT_DEVICE_LINKS)}"
        ) from None
