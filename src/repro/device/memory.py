"""GPU memory pool with peak tracking.

gSampler leverages a caching memory pool (the paper reuses PyTorch's) to
avoid repeated allocator round-trips, and Table 9 reports the *extra* GPU
memory each system consumes during sampling.  This module provides a small
pool that mimics that behaviour: frees return blocks to a size-bucketed
free list, allocations prefer recycling, and the pool tracks live and peak
bytes so the benchmarks can report memory the way Table 9 does.
"""

from __future__ import annotations

import dataclasses

from repro.errors import DeviceError, MemoryBudgetError


@dataclasses.dataclass
class Allocation:
    """A live allocation handle returned by :meth:`MemoryPool.alloc`."""

    alloc_id: int
    nbytes: int
    tag: str
    freed: bool = False


class MemoryPool:
    """A caching allocator model with live/peak accounting.

    The pool does not hold real buffers (NumPy owns the actual memory); it
    models the *device* allocator so that simulated memory consumption can
    be measured and budgets enforced, independent of host-side GC timing.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self._next_id = 0
        self._live: dict[int, Allocation] = {}
        # Size-bucketed cache of freed block sizes, mimicking a caching
        # allocator: cached bytes still count against capacity until
        # trimmed, but re-allocating a cached size is free.
        self._cached: dict[int, int] = {}
        self.live_bytes = 0
        self.cached_bytes = 0
        self.peak_bytes = 0
        self.alloc_count = 0
        self.recycle_count = 0

    def _round(self, nbytes: int) -> int:
        """Round a request up to the pool's 512-byte allocation granule."""
        if nbytes <= 0:
            return 512
        return ((nbytes + 511) // 512) * 512

    def alloc(self, nbytes: int, tag: str = "") -> Allocation:
        """Allocate ``nbytes`` (rounded to the granule) under ``tag``."""
        size = self._round(nbytes)
        recycled = self._cached.get(size, 0) > 0
        # The capacity check runs before any counter mutation so that a
        # MemoryBudgetError leaves the pool exactly as it was.  Recycled
        # blocks are exempt: they swap cached bytes for live bytes, a
        # net-zero move against capacity, so they can neither exceed the
        # budget nor justify a trim.
        if self.capacity is not None and not recycled:
            if self.live_bytes + self.cached_bytes + size > self.capacity:
                self.trim()
                if self.live_bytes + size > self.capacity:
                    raise MemoryBudgetError(
                        f"allocation of {size} bytes for {tag!r} exceeds "
                        f"capacity {self.capacity} (live {self.live_bytes})"
                    )
        if recycled:
            remaining = self._cached[size] - 1
            if remaining:
                self._cached[size] = remaining
            else:
                # Drop empty buckets so long super-batch runs cannot grow
                # the cache dict without bound.
                del self._cached[size]
            self.cached_bytes -= size
            self.recycle_count += 1
        handle = Allocation(alloc_id=self._next_id, nbytes=size, tag=tag)
        self._next_id += 1
        self._live[handle.alloc_id] = handle
        self.live_bytes += size
        self.alloc_count += 1
        self.peak_bytes = max(self.peak_bytes, self.live_bytes + self.cached_bytes)
        return handle

    def free(self, handle: Allocation) -> None:
        """Return an allocation to the cache."""
        if handle.freed:
            raise DeviceError(f"double free of allocation {handle.alloc_id}")
        if handle.alloc_id not in self._live:
            raise DeviceError(f"unknown allocation {handle.alloc_id}")
        handle.freed = True
        del self._live[handle.alloc_id]
        self.live_bytes -= handle.nbytes
        self._cached[handle.nbytes] = self._cached.get(handle.nbytes, 0) + 1
        self.cached_bytes += handle.nbytes

    def trim(self) -> None:
        """Release all cached blocks back to the device."""
        self._cached.clear()
        self.cached_bytes = 0

    def reset_peak(self) -> None:
        """Restart peak tracking from the current live footprint."""
        self.peak_bytes = self.live_bytes + self.cached_bytes

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def stats(self) -> dict[str, int]:
        """A snapshot of the pool counters, for reports and tests."""
        return {
            "live_bytes": self.live_bytes,
            "cached_bytes": self.cached_bytes,
            "peak_bytes": self.peak_bytes,
            "alloc_count": self.alloc_count,
            "recycle_count": self.recycle_count,
            "live_allocations": self.live_allocations,
        }
