"""Execution context: the kernel-launch ledger behind all measurements.

Every kernel in this reproduction — whether issued by gSampler's optimized
engine or by one of the baseline execution models — reports its workload
(bytes moved, FLOPs, parallel tasks, warp divergence, UVA traffic) to an
:class:`ExecutionContext`.  The context converts the workload into
simulated time under its :class:`~repro.device.spec.DeviceSpec` and records
a :class:`KernelLaunch` entry.

This single accounting path is what makes cross-system comparisons fair:
systems differ only in *which* launches they issue (fused vs eager, one per
frontier vs one per layer), never in how a launch is priced.
"""

from __future__ import annotations

import contextlib
import dataclasses
from collections import defaultdict
from typing import TYPE_CHECKING

from repro.device.memory import MemoryPool
from repro.device.spec import CPU, DeviceSpec
from repro.errors import DeviceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.profile.spans import Profiler

#: Name of the implicit serial queue; reserved — launches land on it only
#: when no ``on_queue`` block is active, never by explicit routing.
DEFAULT_QUEUE = "default"


@dataclasses.dataclass(frozen=True)
class KernelLaunch:
    """One recorded kernel launch and its simulated cost.

    ``queue`` names the simulated device queue the launch ran on
    (``"default"`` for the classic serial timeline); ``sim_start`` and
    ``sim_end`` place it on that queue's timeline, so overlapping queues
    can be reconstructed from the flat ledger.
    """

    name: str
    bytes_read: float
    bytes_written: float
    flops: float
    tasks: int
    divergence: float
    uva_bytes: float
    seconds: float
    queue: str = "default"
    sim_start: float = 0.0
    sim_end: float = 0.0


@dataclasses.dataclass
class QueueTimeline:
    """One simulated device queue (the CUDA-stream analogue).

    Launches issued to the same queue serialize: each starts at the
    queue's ``ready`` time and pushes it forward.  Distinct queues
    overlap freely; cross-queue ordering is expressed by syncing a
    queue to an event time (:meth:`sync_to`), the simulator's
    ``cudaStreamWaitEvent``.  ``busy_seconds`` accumulates occupied
    time only, so ``ready - busy_seconds`` is the queue's idle gap —
    the quantity pipeline overlap is trying to drive to zero.
    """

    name: str
    ready: float = 0.0
    busy_seconds: float = 0.0
    launches: int = 0

    def sync_to(self, event_time: float) -> None:
        """Block the queue until ``event_time`` (no-op if already past).

        An event time before the timeline origin is a caller bug — there
        is no simulated moment before 0, so it cannot name a real event —
        and raises :class:`~repro.errors.DeviceError` instead of being
        silently clamped.  (Event times between 0 and ``ready`` are fine:
        waiting on an event that already fired is a no-op, exactly as
        ``cudaStreamWaitEvent`` behaves.)
        """
        if not event_time >= 0.0:  # catches negatives and NaN
            raise DeviceError(
                f"queue {self.name!r}: cannot sync to event time "
                f"{event_time!r} — event times start at 0 on the "
                "simulated clock"
            )
        if event_time > self.ready:
            self.ready = event_time


class ExecutionContext:
    """Accumulates kernel launches and memory traffic for one device.

    Parameters
    ----------
    device:
        The device spec used to price launches. Defaults to the CPU spec.
    graph_on_device:
        Whether the input graph is resident in device memory. When False
        (the paper's PP and FS graphs exceed 16 GB), kernels that declare
        ``graph_bytes`` traffic have it charged over PCIe as UVA access.
    memory:
        Optional shared memory pool; a fresh unbounded pool is created
        when omitted.
    queues:
        Optional declaration of the queue names this context may use.
        When given, the named timelines are created up front and
        :meth:`queue` / :meth:`on_queue` raise
        :class:`~repro.errors.DeviceError` for any other name — a typo'd
        queue then fails loudly instead of silently accruing time on a
        fresh timeline nobody reads.  When omitted (the default), queues
        are created lazily on first use, as before.
    profiler:
        Optional :class:`~repro.profile.Profiler`; when set, every
        recorded launch is mirrored as a leaf span on the profiler's
        span tree.  ``None`` (the default) keeps :meth:`record` on a
        zero-overhead path — profiling never changes launch pricing, so
        simulated times are bit-identical either way.
    """

    def __init__(
        self,
        device: DeviceSpec = CPU,
        *,
        graph_on_device: bool = True,
        memory: MemoryPool | None = None,
        cost_scale: float = 1.0,
        profiler: "Profiler | None" = None,
        queues: "tuple[str, ...] | list[str] | None" = None,
    ) -> None:
        self.device = device
        self.graph_on_device = graph_on_device
        self.memory = memory if memory is not None else MemoryPool()
        self.profiler = profiler
        #: System-level kernel efficiency factor (1.0 = gSampler's tuned
        #: kernels). Baseline execution models run the same logical
        #: kernels through less specialized implementations; their factor
        #: scales each launch's compute/memory time (not UVA transfers).
        self.cost_scale = cost_scale
        self.launches: list[KernelLaunch] = []
        self.elapsed = 0.0
        #: Occupied simulated seconds (sum of launch costs). Equals
        #: ``elapsed`` on the serial path; with multi-queue records,
        #: ``elapsed`` is the timeline end (makespan) while this stays
        #: the total work, so ``busy_seconds / elapsed`` measures
        #: overlap efficiency.
        self.busy_seconds = 0.0
        #: Named device queues, created lazily by :meth:`queue` (or up
        #: front when declared via the ``queues`` parameter).
        self.queues: dict[str, QueueTimeline] = {}
        self._active_queue: QueueTimeline | None = None
        self._declared: tuple[str, ...] | None = (
            tuple(queues) if queues is not None else None
        )
        if self._declared is not None:
            for name in self._declared:
                self._validate_queue_name(name)
                self.queues[name] = QueueTimeline(name=name)

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_queue_name(name: str) -> None:
        if not isinstance(name, str) or not name.strip():
            raise DeviceError(
                f"queue name must be a non-empty string, got {name!r}"
            )
        if name == DEFAULT_QUEUE:
            raise DeviceError(
                f"queue name {DEFAULT_QUEUE!r} is reserved for the "
                "implicit serial timeline; record outside on_queue() to "
                "use it"
            )

    def queue(self, name: str) -> QueueTimeline:
        """The named queue, created at the current timeline start (0).

        With a declared queue set (the ``queues`` constructor parameter),
        unknown names raise :class:`~repro.errors.DeviceError` instead of
        creating a fresh timeline.
        """
        timeline = self.queues.get(name)
        if timeline is None:
            self._validate_queue_name(name)
            if self._declared is not None:
                raise DeviceError(
                    f"unknown queue {name!r}; this context declares "
                    f"queues {sorted(self._declared)}"
                )
            timeline = QueueTimeline(name=name)
            self.queues[name] = timeline
        return timeline

    @contextlib.contextmanager
    def on_queue(self, name: str, *, not_before: float = 0.0):
        """Route every :meth:`record` inside the block onto queue ``name``.

        ``not_before`` is an event time the queue must wait for before
        the block's first launch (a cross-queue dependency, e.g. "this
        batch's feature transfer starts once its sampling finished").
        Launches inside the block serialize on the queue; the context's
        ``elapsed`` becomes the max over all queue end times, which is
        what makes overlapping queue timelines sum to a makespan rather
        than a total.

        Raises :class:`~repro.errors.DeviceError` for a queue name this
        context does not know (when queues were declared up front), for
        the reserved ``"default"`` name, and for a ``not_before`` that
        lies before the simulated clock's origin.
        """
        timeline = self.queue(name)
        timeline.sync_to(not_before)
        previous = self._active_queue
        self._active_queue = timeline
        try:
            yield timeline
        finally:
            self._active_queue = previous

    def record(
        self,
        name: str,
        *,
        bytes_read: float = 0.0,
        bytes_written: float = 0.0,
        flops: float = 0.0,
        tasks: int = 1,
        divergence: float = 1.0,
        graph_bytes: float = 0.0,
        fixed_seconds: float = 0.0,
    ) -> KernelLaunch:
        """Record one kernel launch and return its priced entry.

        ``graph_bytes`` is the portion of ``bytes_read`` that touches the
        input graph's storage; it becomes UVA traffic when the graph lives
        in host memory.  ``fixed_seconds`` adds a flat cost independent of
        the device model (bulk-API setup, host-side bookkeeping).
        """
        uva_bytes = 0.0
        local_bytes = bytes_read + bytes_written
        if not self.graph_on_device and graph_bytes > 0.0:
            uva_bytes = min(graph_bytes, bytes_read)
            local_bytes -= uva_bytes
        seconds = fixed_seconds + self.device.kernel_time(
            bytes_moved=local_bytes * self.cost_scale,
            flops=flops * self.cost_scale,
            tasks=tasks,
            divergence=divergence,
            uva_bytes=uva_bytes,
        )
        timeline = self._active_queue
        if timeline is None:
            # Serial path: one implicit in-order queue; elapsed is both
            # the timeline end and the total work.
            start = self.elapsed
            end = start + seconds
            self.elapsed = end
            queue_name = "default"
        else:
            start = timeline.ready
            end = start + seconds
            timeline.ready = end
            timeline.busy_seconds += seconds
            timeline.launches += 1
            # Overlapping queues: the context clock is the makespan.
            if end > self.elapsed:
                self.elapsed = end
            queue_name = timeline.name
        self.busy_seconds += seconds
        launch = KernelLaunch(
            name=name,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            flops=flops,
            tasks=tasks,
            divergence=divergence,
            uva_bytes=uva_bytes,
            seconds=seconds,
            queue=queue_name,
            sim_start=start,
            sim_end=end,
        )
        self.launches.append(launch)
        profiler = self.profiler
        if profiler is not None:
            profiler.on_kernel(launch)
        return launch

    def reset(self, *, include_peak: bool = False) -> None:
        """Clear the ledger and timer.

        The memory pool's live/cached state is always left untouched (a
        warmed cache is part of what super-batching amortizes), but
        ``include_peak=True`` additionally restarts peak tracking from
        the current footprint so measurements taken after a warmup do
        not report the warmup's peak (the Table-9 memory column bug).
        """
        self.launches.clear()
        self.elapsed = 0.0
        self.busy_seconds = 0.0
        self.queues.clear()
        if self._declared is not None:
            for name in self._declared:
                self.queues[name] = QueueTimeline(name=name)
        if include_peak:
            self.memory.reset_peak()

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def time_by_kernel(self) -> dict[str, float]:
        """Total simulated seconds grouped by kernel name."""
        totals: dict[str, float] = defaultdict(float)
        for launch in self.launches:
            totals[launch.name] += launch.seconds
        return dict(totals)

    def launch_count(self) -> int:
        return len(self.launches)

    def queue_stats(self) -> dict[str, QueueTimeline]:
        """Snapshot of every named queue's timeline (serial runs: empty)."""
        return dict(self.queues)

    def overlap_efficiency(self) -> float:
        """Occupied fraction of the timeline: ``busy / elapsed``.

        1.0 means perfectly packed (serial runs by construction);
        values above 1.0 mean queues genuinely overlapped — the epoch
        did more seconds of work than wall-clock passed.
        """
        if self.elapsed <= 0.0:
            return 0.0
        return self.busy_seconds / self.elapsed

    def total_bytes(self) -> float:
        return sum(l.bytes_read + l.bytes_written for l in self.launches)

    def sm_utilization(self) -> float:
        """Time-weighted average occupancy, as a percentage.

        This reproduces the "SM (%)" column of Table 9: a system that
        issues many small launches (low occupancy each) scores low even if
        it is busy the whole time, matching what ``nvidia-smi`` style
        sampling reports for under-filled kernels.
        """
        if not self.launches:
            return 0.0
        weighted = 0.0
        for launch in self.launches:
            occ = self.device.occupancy(launch.tasks)
            weighted += occ * launch.seconds
        return 100.0 * weighted / self.elapsed if self.elapsed > 0 else 0.0


class NullContext(ExecutionContext):
    """A context that skips ledger writes; used for pure eager execution.

    Keeping the interface identical lets kernels call ``ctx.record(...)``
    unconditionally without branching on whether accounting is on.
    """

    def record(self, name: str, **kwargs: float) -> KernelLaunch:  # type: ignore[override]
        return KernelLaunch(
            name=name,
            bytes_read=0.0,
            bytes_written=0.0,
            flops=0.0,
            tasks=1,
            divergence=1.0,
            uva_bytes=0.0,
            seconds=0.0,
        )


#: Shared do-nothing context for eager, unmeasured execution.
NULL_CONTEXT = NullContext()
