"""Analytical device simulator: specs, memory pool, and launch ledger.

This package is the reproduction's stand-in for real GPU hardware (see
DESIGN.md, "Hardware substitution").  Kernels report their workload to an
:class:`ExecutionContext`; the context prices each launch under a
:class:`DeviceSpec` and accumulates simulated time, memory, and occupancy
statistics that the benchmarks report in place of the paper's V100/T4
measurements.
"""

from repro.device.context import (
    NULL_CONTEXT,
    ExecutionContext,
    KernelLaunch,
    NullContext,
    QueueTimeline,
)
from repro.device.interconnect import (
    NVLINK,
    PCIE,
    LinkSpec,
    default_link_for,
    get_link,
    p2p_cheaper_than_host,
)
from repro.device.memory import Allocation, MemoryPool
from repro.device.spec import CPU, GB, T4, V100, DeviceSpec, get_device

__all__ = [
    "CPU",
    "GB",
    "NULL_CONTEXT",
    "NVLINK",
    "PCIE",
    "T4",
    "V100",
    "Allocation",
    "DeviceSpec",
    "ExecutionContext",
    "KernelLaunch",
    "LinkSpec",
    "MemoryPool",
    "NullContext",
    "QueueTimeline",
    "default_link_for",
    "get_device",
    "get_link",
    "p2p_cheaper_than_host",
]
