"""Device specifications for the analytical performance simulator.

The paper evaluates gSampler on NVIDIA V100 and T4 GPUs (Section 5.1), with
graphs either resident in GPU memory or kept in CPU memory and accessed via
Unified Virtual Addressing (UVA) over PCIe.  This module captures the
hardware quantities the evaluation depends on:

* memory bandwidth (the paper notes T4 has 30.0% of V100's bandwidth),
* peak FLOPs (T4 has 51.6% of V100's),
* kernel launch overhead (what super-batching amortizes),
* the task count needed to saturate the device (what Figure 6 sweeps),
* PCIe bandwidth and a hot-node cache rate for UVA access.

Absolute constants are an approximation of the real parts; the benchmarks
only rely on the *ratios*, which follow the paper's stated numbers.
"""

from __future__ import annotations

import dataclasses

from repro.errors import DeviceError

#: Bytes per gigabyte, used by the specs below.
GB = 1024**3


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """An analytical model of one execution device.

    The simulated execution time of a kernel launch is::

        overhead + max(bytes / eff_bandwidth, flops / eff_flops) * divergence

    where the effective rates scale with occupancy: a launch with fewer
    tasks than ``saturation_tasks`` only reaches a proportional fraction of
    peak, floored at ``min_occupancy`` (small kernels still make progress).
    """

    name: str
    #: Peak memory bandwidth in bytes/second.
    bandwidth: float
    #: Peak arithmetic throughput in FLOP/second.
    flops: float
    #: Fixed cost of launching one kernel, in seconds.
    launch_overhead: float
    #: Number of parallel tasks needed to fully occupy the device.
    saturation_tasks: int
    #: Occupancy floor for tiny launches.
    min_occupancy: float
    #: Device memory capacity in bytes (graphs larger than this spill to
    #: host memory and are accessed via UVA).
    memory_capacity: int
    #: Host-to-device bandwidth for UVA access, bytes/second. ``None``
    #: means the device *is* the host (CPU) and UVA does not apply.
    pcie_bandwidth: float | None = None
    #: Fraction of UVA traffic served by on-device caching of hot nodes.
    #: The paper observes skewed access lets popular adjacency lists stay
    #: cached, reducing PCIe traffic.
    uva_cache_hit_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.flops <= 0:
            raise DeviceError(f"{self.name}: bandwidth and flops must be positive")
        if not 0.0 < self.min_occupancy <= 1.0:
            raise DeviceError(f"{self.name}: min_occupancy must be in (0, 1]")
        if not 0.0 <= self.uva_cache_hit_rate < 1.0:
            raise DeviceError(f"{self.name}: uva_cache_hit_rate must be in [0, 1)")

    def occupancy(self, tasks: int) -> float:
        """Fraction of peak throughput reached by a launch of ``tasks``."""
        if tasks <= 0:
            return self.min_occupancy
        return min(1.0, max(self.min_occupancy, tasks / self.saturation_tasks))

    def kernel_time(
        self,
        *,
        bytes_moved: float,
        flops: float,
        tasks: int,
        divergence: float = 1.0,
        uva_bytes: float = 0.0,
    ) -> float:
        """Simulated wall time in seconds for one kernel launch.

        ``uva_bytes`` is the subset of traffic that crosses PCIe (graph data
        resident in host memory); it is charged at PCIe bandwidth after
        applying the hot-node cache hit rate.
        """
        occ = self.occupancy(tasks)
        mem_time = bytes_moved / (self.bandwidth * occ)
        compute_time = flops / (self.flops * occ)
        uva_time = 0.0
        if uva_bytes > 0.0:
            if self.pcie_bandwidth is None:
                # Host-resident device: "UVA" bytes are ordinary memory
                # traffic.
                mem_time += uva_bytes / (self.bandwidth * occ)
            else:
                effective = uva_bytes * (1.0 - self.uva_cache_hit_rate)
                uva_time = effective / self.pcie_bandwidth
        return self.launch_overhead + max(mem_time, compute_time) * divergence + uva_time


#: NVIDIA V100 (p3.16xlarge in the paper): 900 GB/s HBM2, ~14 TFLOPs FP32,
#: 16 GB memory.
V100 = DeviceSpec(
    name="v100",
    bandwidth=900e9,
    flops=14e12,
    launch_overhead=5e-6,
    saturation_tasks=160_000,
    min_occupancy=0.02,
    memory_capacity=16 * GB,
    pcie_bandwidth=12e9,
    uva_cache_hit_rate=0.55,
)

#: NVIDIA T4: the paper states 30.0% of V100's bandwidth and 51.6% of its
#: FLOPs, with the same 16 GB capacity.
T4 = DeviceSpec(
    name="t4",
    bandwidth=0.300 * 900e9,
    flops=0.516 * 14e12,
    launch_overhead=5e-6,
    saturation_tasks=65_000,
    min_occupancy=0.02,
    memory_capacity=16 * GB,
    pcie_bandwidth=12e9,
    uva_cache_hit_rate=0.55,
)

#: Host CPU (64 vCPU Xeon in the paper). Graph sampling on CPU is bound
#: by random-access memory latency (pointer chasing through adjacency
#: lists), not peak STREAM bandwidth, so the effective bandwidth here is
#: the random-access figure (~2 GB/s) and the FLOP rate reflects the
#: per-element branching of sampling loops. This is what makes GPU
#: sampling 1-2 orders of magnitude faster, as the paper observes.
CPU = DeviceSpec(
    name="cpu",
    bandwidth=0.5e9,
    flops=0.02e12,
    launch_overhead=2e-6,
    saturation_tasks=64,
    min_occupancy=0.25,
    memory_capacity=488 * GB,
    pcie_bandwidth=None,
)

_REGISTRY = {spec.name: spec for spec in (V100, T4, CPU)}


def get_device(name: str) -> DeviceSpec:
    """Look up a built-in device spec by name (``v100``, ``t4``, ``cpu``).

    Each device is registered alongside a default interconnect for
    multi-device deployments (`repro.device.interconnect`): V100s pair
    over NVLink, T4 and CPU over PCIe.  Use
    :func:`~repro.device.interconnect.default_link_for` (same name
    lookup) for the matching :class:`~repro.device.interconnect.LinkSpec`.
    """
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
