"""Shared latency-statistics helpers: percentiles and sliding windows.

One home for the percentile math that used to be re-implemented in
``repro.serve.metrics`` (report aggregation), the serving simulator's
SLO monitor (windowed p99), and the benchmark scripts (table columns).
Everything is a thin, deterministic wrapper over :func:`numpy.percentile`
so every consumer computes bit-identical numbers from the same samples —
the property the serving determinism guard and the cluster's per-replica
aggregation both rely on.
"""

from __future__ import annotations

from collections import deque

import numpy as np

#: Percentiles reported by the serving report and the bench tables.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values, q: float) -> float:
    """The ``q``-th percentile of ``values``; 0.0 on an empty sample."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return float(np.percentile(values, q))


def percentile_ms(latencies, q: float) -> float:
    """The ``q``-th percentile of ``latencies`` (seconds), in ms."""
    return percentile(latencies, q) * 1e3


def latency_summary(latencies) -> dict[str, float]:
    """p50/p95/p99/mean/max (all in ms) of a latency sample in seconds.

    The flat dict every latency table in ``repro.serve`` and the bench
    scripts is assembled from; empty samples yield all-zero summaries.
    """
    latencies = np.asarray(latencies, dtype=np.float64)
    summary = {
        f"p{int(q)}_ms": percentile_ms(latencies, q)
        for q in LATENCY_PERCENTILES
    }
    summary["mean_ms"] = float(latencies.mean()) * 1e3 if latencies.size else 0.0
    summary["max_ms"] = float(latencies.max()) * 1e3 if latencies.size else 0.0
    return summary


class SlidingWindow:
    """A bounded FIFO of float samples with percentile queries.

    The serving degradation ladder watches the p99 of the last ``size``
    completed-request latencies; per-replica SLO monitors each own one.
    Pushing beyond ``size`` drops the oldest sample, exactly like the
    ``del window[0]`` list idiom this replaces.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"window size must be positive, got {size}")
        self.size = size
        self._samples: deque[float] = deque(maxlen=size)

    def push(self, value: float) -> None:
        self._samples.append(float(value))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def full(self) -> bool:
        return len(self._samples) == self.size

    def values(self) -> np.ndarray:
        """The window's samples, oldest first."""
        return np.asarray(self._samples, dtype=np.float64)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the windowed samples (0.0 if empty)."""
        return percentile(self.values(), q)

    def clear(self) -> None:
        self._samples.clear()
