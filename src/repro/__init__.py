"""gSampler reproduction: general and efficient graph sampling (SOSP '23).

Public API quick reference::

    from repro import from_edges, compile_sampler, OptimizationConfig
    from repro.datasets import load_dataset
    from repro.algorithms import make_algorithm
    from repro.device import ExecutionContext, V100

    ds = load_dataset("pd")

    def sage_layer(A, frontiers, K):
        sub_A = A[:, frontiers]
        sample_A = sub_A.individual_sample(K)
        return sample_A, sample_A.row()

    sampler = compile_sampler(
        sage_layer, ds.graph, ds.train_ids[:1024], constants={"K": 10}
    )
    ctx = ExecutionContext(V100)
    matrix, next_frontiers = sampler.run(ds.train_ids[:1024], ctx=ctx)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import GraphSample, Matrix, SampledLayer, from_edges, new_rng
from repro.sampler import CompiledSampler, OptimizationConfig, compile_sampler

__version__ = "1.0.0"

__all__ = [
    "CompiledSampler",
    "GraphSample",
    "Matrix",
    "OptimizationConfig",
    "SampledLayer",
    "__version__",
    "compile_sampler",
    "from_edges",
    "new_rng",
]
