"""Exception hierarchy for the gSampler reproduction.

Every error raised by this package derives from :class:`GSamplerError` so
that callers can catch framework errors without masking programming
mistakes (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class GSamplerError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(GSamplerError):
    """An operation received operands with incompatible shapes."""


class FormatError(GSamplerError):
    """A sparse matrix was asked for an unsupported or unknown layout."""


class TraceError(GSamplerError):
    """The symbolic tracer could not record a user program."""


class PassError(GSamplerError):
    """An IR optimization pass found the graph in an inconsistent state."""


class InvariantError(PassError):
    """The IR invariant checker rejected a graph between pass transitions.

    Raised by :func:`repro.verify.invariants.check_invariants` — either
    directly in tests, or by :class:`~repro.ir.passes.base.PassManager`
    when constructed with ``debug=True``.  The message names the pass
    stage after which the violation was observed.
    """


class UnsupportedAlgorithmError(GSamplerError):
    """A baseline system was asked to run an algorithm it does not support.

    This mirrors the N/A entries in Figures 7 and 8 of the paper: e.g.
    GunRock only implements GraphSAGE, PyG has no GPU path for complex
    algorithms, and vertex-centric systems cannot express layer-wise
    sampling at all.
    """

    def __init__(self, system: str, algorithm: str, reason: str) -> None:
        self.system = system
        self.algorithm = algorithm
        self.reason = reason
        super().__init__(f"{system} cannot run {algorithm}: {reason}")


class MemoryBudgetError(GSamplerError):
    """A super-batch configuration exceeded the user memory budget."""


class DeviceError(GSamplerError):
    """The device simulator was used inconsistently."""


class ServeError(GSamplerError):
    """The online serving simulator was configured inconsistently.

    Raised by :mod:`repro.serve` for invalid workload specs (non-positive
    arrival rates, unknown arrival processes), batching policies that can
    never fire (zero max batch), and SLO targets that cannot be expressed
    on the simulated clock.
    """
