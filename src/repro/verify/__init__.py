"""Differential-testing & statistical-verification subsystem.

Three layers guard the pass pipeline:

* :mod:`repro.verify.oracle` — an eager reference executor that runs
  traced programs op-by-op with no passes applied (the oracle);
* :mod:`repro.verify.equivalence` — a distribution-equivalence checker
  sweeping every :class:`~repro.sampler.OptimizationConfig` combination
  plus the super-batched path, comparing neighbor-selection marginals to
  the oracle's with chi-square/KS tests;
* :mod:`repro.verify.invariants` — an IR invariant checker that
  :class:`~repro.ir.passes.base.PassManager` runs after every pass when
  built with ``debug=True``.

:mod:`repro.verify.dynamic` extends the same machinery to mutating
graphs: a compacted :class:`~repro.dynamic.DeltaGraph` must be
bit-identical to a fresh CSC over the same edge set, and pre-compaction
overlay snapshots must sample from the rebuilt graph's distribution.

CLI: ``gsampler-repro verify <algorithm>`` (``dynamic`` runs the
delta-graph check; ``all`` includes it).
"""

from repro.verify.equivalence import (
    EquivalenceReport,
    VariantCheck,
    VerifySpec,
    builtin_specs,
    check_distribution_equivalence,
    check_serving_equivalence,
    collect_edge_marginals,
    verification_graph,
    verify_algorithm,
)
from repro.verify.dynamic import (
    DynamicCheck,
    check_dynamic_equivalence,
    graph_digest,
)
from repro.verify.invariants import check_invariants
from repro.verify.linkpred import LinkpredCheck, check_linkpred_equivalence
from repro.verify.oracle import EagerOracle, trace_oracle
from repro.verify.stats import (
    TestResult,
    bonferroni,
    chi2_homogeneity,
    chi2_sf,
    ks_2samp,
    pool_small_cells,
)

__all__ = [
    "DynamicCheck",
    "EagerOracle",
    "EquivalenceReport",
    "LinkpredCheck",
    "TestResult",
    "VariantCheck",
    "VerifySpec",
    "bonferroni",
    "builtin_specs",
    "check_distribution_equivalence",
    "check_dynamic_equivalence",
    "check_invariants",
    "check_linkpred_equivalence",
    "check_serving_equivalence",
    "chi2_homogeneity",
    "chi2_sf",
    "collect_edge_marginals",
    "graph_digest",
    "ks_2samp",
    "pool_small_cells",
    "trace_oracle",
    "verification_graph",
    "verify_algorithm",
]
