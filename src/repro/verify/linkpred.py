"""Link-prediction equivalence: compaction, negatives, pair-seeded grid.

The link-prediction path adds three things on top of the node-seed
samplers, and each gets its own check here:

* **Compaction round-trip.**  :func:`~repro.tasks.unique_and_compact_node_pairs`
  must satisfy ``seeds[compacted] == original`` for positive and
  negative pair sets alike, emit sorted unique int64 seeds, and be a
  pure function of its inputs.
* **Negative-sampler properties.**  Corrupted pairs must never collide
  with the live edge set (no false negatives), avoid self-loops, and be
  bit-reproducible under a fixed generator seed.
* **Pair-seeded marginals.**  Sampling from a *compacted node-pair
  frontier* must be distribution-equivalent across the whole
  :class:`~repro.sampler.OptimizationConfig` grid (plus the super-batch
  path) — the same chi-square/KS machinery the node-seed algorithms are
  held to, seeded by the unique endpoint set of a positive+negative
  pair batch instead of raw node ids.

CLI: ``gsampler-repro verify linkpred`` (also folded into ``verify all``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import new_rng
from repro.errors import GSamplerError
from repro.tasks import (
    edge_endpoints_of,
    edge_keys,
    negative_sample,
    unique_and_compact_node_pairs,
)
from repro.verify.equivalence import (
    EquivalenceReport,
    builtin_specs,
    check_distribution_equivalence,
    verification_graph,
)

__all__ = ["LinkpredCheck", "check_linkpred_equivalence"]


@dataclasses.dataclass(frozen=True)
class LinkpredCheck:
    """Outcome of one link-prediction equivalence run."""

    trials: int
    #: Candidate pairs exercised by the compaction / negative checks.
    pairs: int
    #: ``seeds[compacted] == original`` held for every pair set, seeds
    #: sorted unique int64.
    compaction_ok: bool
    #: No negative collided with a live edge or formed a self-loop.
    no_false_negatives: bool
    #: Equal generator seeds reproduced the exact negative stream.
    negatives_deterministic: bool
    #: Pair-seeded sampling vs the oracle across the config grid.
    marginals: EquivalenceReport

    @property
    def passed(self) -> bool:
        return (
            self.compaction_ok
            and self.no_false_negatives
            and self.negatives_deterministic
            and self.marginals.passed
        )

    def describe(self) -> str:
        verdict = "ok" if self.passed else "FAIL"
        bad = len(self.marginals.failures())
        return (
            f"linkpred: compaction "
            f"{'ok' if self.compaction_ok else 'BROKEN'} over "
            f"{self.pairs} pairs, negatives "
            f"{'clean' if self.no_false_negatives else 'COLLIDE'}/"
            f"{'det' if self.negatives_deterministic else 'NONDET'}, "
            f"marginals {len(self.marginals.variants) - bad}/"
            f"{len(self.marginals.variants)} variants [{verdict}]"
        )


def check_linkpred_equivalence(
    *,
    num_nodes: int = 96,
    avg_degree: int = 8,
    graph_seed: int = 5,
    pairs: int = 24,
    trials: int = 200,
    alpha: float = 0.01,
    seed: int = 0,
) -> LinkpredCheck:
    """Run all three halves of the link-prediction contract."""
    if trials < 1:
        raise GSamplerError(
            f"verification needs at least 1 trial, got {trials}"
        )
    if not 0.0 < alpha < 1.0:
        raise GSamplerError(f"alpha must be in (0, 1), got {alpha}")
    graph = verification_graph(num_nodes, avg_degree, seed=graph_seed)
    src, dst = edge_endpoints_of(graph)
    live_keys = np.sort(edge_keys(src, dst, num_nodes))

    # -- half 1+2: compaction round-trip & negative properties ----------
    rng = new_rng(seed)
    compaction_ok = True
    no_false_negatives = True
    eids = rng.choice(len(src), size=min(pairs, len(src)), replace=False)
    pos = np.stack([src[eids], dst[eids]], axis=1)
    neg_dst = negative_sample(pos[:, 0], num_nodes, live_keys, new_rng(seed))
    neg_dst_again = negative_sample(
        pos[:, 0], num_nodes, live_keys, new_rng(seed)
    )
    negatives_deterministic = np.array_equal(neg_dst, neg_dst_again)
    neg = np.stack([pos[:, 0], neg_dst], axis=1)
    neg_keys = edge_keys(neg[:, 0], neg[:, 1], num_nodes)
    if (
        np.isin(neg_keys, live_keys).any()
        or (neg[:, 0] == neg[:, 1]).any()
    ):
        no_false_negatives = False
    seeds, cpos, cneg = unique_and_compact_node_pairs(pos, neg)
    if (
        seeds.dtype != np.int64
        or not np.array_equal(seeds, np.unique(seeds))
        or not np.array_equal(seeds[cpos], pos)
        or not np.array_equal(seeds[cneg], neg)
    ):
        compaction_ok = False

    # -- half 3: pair-seeded marginals across the config grid -----------
    spec = builtin_specs()["graphsage"]
    marginals = check_distribution_equivalence(
        spec.layer_fn,
        graph,
        seeds,
        constants=spec.constants,
        trials=trials,
        alpha=alpha,
        seed=seed,
        name="linkpred-pair-seeded",
    )

    return LinkpredCheck(
        trials=trials,
        pairs=int(len(pos) + len(neg)),
        compaction_ok=compaction_ok,
        no_false_negatives=no_false_negatives,
        negatives_deterministic=negatives_deterministic,
        marginals=marginals,
    )
