"""Distribution-equivalence checking across the optimization grid.

gSampler's contract (Section 4.1) is that fusion, layout selection, and
super-batching change performance, never sampling semantics.  This
module enforces that contract statistically: a program is executed by
the eager oracle and by a compiled sampler under **all 8
OptimizationConfig combinations plus the super-batched path**, per-edge
selection marginals are accumulated over many independent trials, and
each variant's marginal is compared to the oracle's with a two-sample
chi-square test (Bonferroni-corrected across variants).  A KS test over
the per-trial sampled edge-value mass covers the continuous side —
debiasing arithmetic that skews *weights* rather than *which* edges.

The trial seeds derive deterministically from one root seed, so a
failure is reproducible bit-for-bit by rerunning with the printed seed.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable, Iterator

import numpy as np

from repro.core import new_rng
from repro.core.matrix import Matrix, from_edges
from repro.errors import GSamplerError, TraceError
from repro.sampler import CompiledSampler, OptimizationConfig, compile_sampler
from repro.verify.oracle import EagerOracle, trace_oracle
from repro.verify.stats import TestResult, bonferroni, chi2_homogeneity, ks_2samp

__all__ = [
    "EquivalenceReport",
    "VariantCheck",
    "VerifySpec",
    "builtin_specs",
    "check_distribution_equivalence",
    "check_serving_equivalence",
    "collect_edge_marginals",
    "verification_graph",
    "verify_algorithm",
]

#: Multiplier separating per-variant seed streams; any odd constant
#: larger than plausible trial counts works.
_SEED_STRIDE = 1_000_003


# ---------------------------------------------------------------------------
# Marginal collection
# ---------------------------------------------------------------------------
def collect_edge_marginals(
    run_one: Callable[[np.random.Generator], Matrix | list[Matrix]],
    *,
    trials: int,
    seed: int,
) -> tuple[dict[tuple[int, int], int], np.ndarray]:
    """Accumulate per-edge selection counts over independent trials.

    ``run_one`` draws one sample (or a list of samples, for super-batch
    launches) with the given RNG.  Returns the edge-count table keyed by
    original ``(src, dst)`` ids and the per-sample edge-value sums used
    for the KS check.
    """
    counts: dict[tuple[int, int], int] = {}
    value_sums: list[float] = []
    produced = 0
    trial = 0
    while produced < trials:
        rng = new_rng(seed + trial)
        trial += 1
        result = run_one(rng)
        matrices = result if isinstance(result, list) else [result]
        for matrix in matrices:
            rows, cols, values = matrix.to_coo_arrays()
            for r, c in zip(rows.tolist(), cols.tolist()):
                key = (r, c)
                counts[key] = counts.get(key, 0) + 1
            value_sums.append(float(np.asarray(values, dtype=np.float64).sum()))
            produced += 1
            if produced >= trials:
                break
    return counts, np.asarray(value_sums)


def _aligned_counts(
    a: dict[tuple[int, int], int], b: dict[tuple[int, int], int]
) -> tuple[np.ndarray, np.ndarray]:
    keys = sorted(set(a) | set(b))
    return (
        np.asarray([a.get(k, 0) for k in keys], dtype=np.float64),
        np.asarray([b.get(k, 0) for k in keys], dtype=np.float64),
    )


# ---------------------------------------------------------------------------
# Report types
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class VariantCheck:
    """One variant's comparison against the oracle."""

    name: str
    trials: int
    chi2: TestResult
    ks: TestResult
    adjusted_chi2_p: float
    adjusted_ks_p: float
    passed: bool

    def describe(self) -> str:
        verdict = "ok" if self.passed else "FAIL"
        return (
            f"{self.name}: chi2={self.chi2.statistic:.2f} "
            f"(dof={self.chi2.dof}, adj p={self.adjusted_chi2_p:.4f}), "
            f"KS D={self.ks.statistic:.3f} (adj p={self.adjusted_ks_p:.4f}) "
            f"[{verdict}]"
        )


@dataclasses.dataclass
class EquivalenceReport:
    """Full verification outcome for one program."""

    program: str
    alpha: float
    trials: int
    seed: int
    num_tests: int
    variants: list[VariantCheck]

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.variants)

    def failures(self) -> list[VariantCheck]:
        return [v for v in self.variants if not v.passed]

    def summary(self) -> str:
        lines = [
            f"distribution equivalence for {self.program!r}: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"(alpha={self.alpha}, trials={self.trials}, seed={self.seed}, "
            f"Bonferroni m={self.num_tests})"
        ]
        lines.extend("  " + v.describe() for v in self.variants)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------
def _sample_matrix(result: object) -> Matrix:
    """The sampled matrix of a program result (first leaf by contract)."""
    value = result[0] if isinstance(result, tuple) else result
    if not isinstance(value, Matrix):
        raise TraceError(
            "verification requires the program's first output to be the "
            f"sampled matrix, got {type(value).__name__}"
        )
    return value


def compare_to_oracle(
    oracle_counts: dict[tuple[int, int], int],
    oracle_sums: np.ndarray,
    variant_counts: dict[tuple[int, int], int],
    variant_sums: np.ndarray,
    *,
    name: str,
    trials: int,
    alpha: float,
    num_tests: int,
    gate_ks: bool = True,
) -> VariantCheck:
    """Score one variant's marginals against the oracle's."""
    a, b = _aligned_counts(oracle_counts, variant_counts)
    chi2 = chi2_homogeneity(a, b)
    # KS is only meaningful when per-trial sums genuinely vary.  Programs
    # whose rescaling pins the sum to a constant (e.g. VR-GCN's
    # control-variate scaling) differ across variants only by
    # fusion-order float rounding, which KS would flag spuriously.
    combined = np.concatenate([oracle_sums, variant_sums])
    scale = max(abs(float(combined.mean())), 1.0)
    if float(combined.std()) <= 1e-5 * scale:
        ks = TestResult(statistic=0.0, p_value=1.0, dof=0)
    else:
        ks = ks_2samp(oracle_sums, variant_sums)
    adj_chi2 = bonferroni(chi2.p_value, num_tests)
    adj_ks = bonferroni(ks.p_value, num_tests)
    passed = adj_chi2 > alpha and (not gate_ks or adj_ks > alpha)
    return VariantCheck(
        name=name,
        trials=trials,
        chi2=chi2,
        ks=ks,
        adjusted_chi2_p=adj_chi2,
        adjusted_ks_p=adj_ks,
        passed=passed,
    )


def check_distribution_equivalence(
    fn: Callable,
    graph: Matrix,
    frontiers: np.ndarray,
    *,
    constants: dict | None = None,
    tensors: dict[str, np.ndarray] | None = None,
    trials: int = 200,
    alpha: float = 0.01,
    seed: int = 0,
    superbatch_batches: int | None = 3,
    name: str = "program",
    debug: bool = True,
) -> EquivalenceReport:
    """Verify ``fn`` is distribution-equivalent across the whole grid.

    Runs the eager oracle plus one compiled variant per
    ``OptimizationConfig`` combination (8) and, when the program follows
    the ``(matrix, next_frontiers)`` contract and ``superbatch_batches``
    is set, the super-batched execution path.  Every compile happens
    under ``debug=True`` so the per-pass invariant checker also vets the
    pipeline.  Each variant's chi-square/KS p-values are
    Bonferroni-corrected across all variants; the report passes only if
    every adjusted p-value exceeds ``alpha``.
    """
    if trials < 1:
        raise GSamplerError(f"verification needs at least 1 trial, got {trials}")
    if not 0.0 < alpha < 1.0:
        raise GSamplerError(f"alpha must be in (0, 1), got {alpha}")
    frontiers = np.asarray(frontiers)
    oracle = trace_oracle(
        fn, graph, frontiers, constants=constants, tensors=tensors
    )

    def oracle_run(rng: np.random.Generator) -> Matrix:
        return _sample_matrix(oracle.run(frontiers, tensors=tensors, rng=rng))

    oracle_counts, oracle_sums = collect_edge_marginals(
        oracle_run, trials=trials, seed=seed
    )

    variants: list[tuple[str, Callable[[np.random.Generator], Matrix | list[Matrix]]]] = []
    for config in OptimizationConfig.all_combinations():
        sampler = compile_sampler(
            fn,
            graph,
            frontiers,
            constants=constants,
            tensors=tensors,
            config=config,
            debug=debug,
        )

        def config_run(
            rng: np.random.Generator, _sampler: CompiledSampler = sampler
        ) -> Matrix:
            return _sample_matrix(
                _sampler.run(frontiers, tensors=tensors, rng=rng)
            )

        variants.append((config.label(), config_run))

    if superbatch_batches:
        sb_sampler = compile_sampler(
            fn,
            graph,
            frontiers,
            constants=constants,
            tensors=tensors,
            debug=debug,
        )
        if sb_sampler.structure == ("leaf", "leaf"):
            batches = [frontiers] * superbatch_batches

            def superbatch_run(rng: np.random.Generator) -> list[Matrix]:
                results = sb_sampler.run_superbatch(
                    batches, tensors=tensors, rng=rng
                )
                return [matrix for matrix, _ in results]

            variants.append((f"superbatch(x{superbatch_batches})", superbatch_run))

    num_tests = len(variants)
    checks: list[VariantCheck] = []
    for index, (label, run_one) in enumerate(variants, start=1):
        counts, sums = collect_edge_marginals(
            run_one, trials=trials, seed=seed + index * _SEED_STRIDE
        )
        checks.append(
            compare_to_oracle(
                oracle_counts,
                oracle_sums,
                counts,
                sums,
                name=label,
                trials=trials,
                alpha=alpha,
                num_tests=num_tests,
            )
        )
    return EquivalenceReport(
        program=name,
        alpha=alpha,
        trials=trials,
        seed=seed,
        num_tests=num_tests,
        variants=checks,
    )


def check_serving_equivalence(
    fn: Callable,
    graph: Matrix,
    seed_sets: list[np.ndarray],
    *,
    constants: dict | None = None,
    tensors: dict[str, np.ndarray] | None = None,
    trials: int = 120,
    alpha: float = 0.01,
    seed: int = 0,
    name: str = "program",
    debug: bool = True,
) -> EquivalenceReport:
    """Verify super-batch *serving* preserves per-request distributions.

    The serving super-batch composer fuses the pending requests'
    heterogeneous seed sets into one ``run_superbatch`` launch sequence
    and splits the results back per request.  This trial holds that path
    to the same statistical contract as training-time super-batching:
    the oracle samples each request's seed set **individually** (the
    per-request serving path), and for every ``OptimizationConfig``
    combination the fused window executes all of ``seed_sets`` in one
    super-batched run.  Both sides emit one matrix per request in the
    same request order, so the pooled per-edge marginals are directly
    comparable; any cross-request interference inside the fused window
    (row-space collisions, RNG coupling, split mis-slicing) shifts the
    marginals and fails the chi-square/KS comparison.
    """
    if trials < 1:
        raise GSamplerError(f"verification needs at least 1 trial, got {trials}")
    if not 0.0 < alpha < 1.0:
        raise GSamplerError(f"alpha must be in (0, 1), got {alpha}")
    if not seed_sets:
        raise GSamplerError("serving verification needs at least one request")
    seed_sets = [np.asarray(s) for s in seed_sets]
    oracle = trace_oracle(
        fn, graph, seed_sets[0], constants=constants, tensors=tensors
    )

    def oracle_run(rng: np.random.Generator) -> list[Matrix]:
        return [
            _sample_matrix(oracle.run(seeds, tensors=tensors, rng=rng))
            for seeds in seed_sets
        ]

    oracle_counts, oracle_sums = collect_edge_marginals(
        oracle_run, trials=trials, seed=seed
    )

    variants: list[tuple[str, Callable[[np.random.Generator], list[Matrix]]]] = []
    for config in OptimizationConfig.all_combinations():
        sampler = compile_sampler(
            fn,
            graph,
            seed_sets[0],
            constants=constants,
            tensors=tensors,
            config=config,
            debug=debug,
        )
        if sampler.structure != ("leaf", "leaf"):
            raise TraceError(
                "serving verification requires the (matrix, "
                "next_frontiers) one-layer contract"
            )

        def serve_run(
            rng: np.random.Generator, _sampler: CompiledSampler = sampler
        ) -> list[Matrix]:
            results = _sampler.run_superbatch(
                seed_sets, tensors=tensors, rng=rng
            )
            return [matrix for matrix, _ in results]

        variants.append((f"serve-{config.label()}", serve_run))

    num_tests = len(variants)
    checks: list[VariantCheck] = []
    for index, (label, run_one) in enumerate(variants, start=1):
        counts, sums = collect_edge_marginals(
            run_one, trials=trials, seed=seed + index * _SEED_STRIDE
        )
        checks.append(
            compare_to_oracle(
                oracle_counts,
                oracle_sums,
                counts,
                sums,
                name=label,
                trials=trials,
                alpha=alpha,
                num_tests=num_tests,
            )
        )
    return EquivalenceReport(
        program=name,
        alpha=alpha,
        trials=trials,
        seed=seed,
        num_tests=num_tests,
        variants=checks,
    )


# ---------------------------------------------------------------------------
# Per-algorithm verification specs
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class VerifySpec:
    """How to verify one registered algorithm's layer program."""

    algorithm: str
    layer_fn: Callable
    constants: dict
    #: Builds the per-run tensors dict from the graph (model-driven
    #: algorithms); None for tensor-free programs.
    tensors_fn: Callable[[Matrix], dict[str, np.ndarray]] | None = None
    #: Whether the super-batched path participates in verification.
    superbatch: bool = True


def _asgcn_tensors(graph: Matrix) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    features = rng.random((graph.shape[0], 8)).astype(np.float32)
    w_att = (rng.standard_normal(8) * 0.1).astype(np.float32)
    return {"features": features, "w_att": w_att}


def builtin_specs() -> dict[str, VerifySpec]:
    """Verification specs for the statistically verifiable registered
    algorithms (one compiled ECSF layer each).

    Walk algorithms (deepwalk, node2vec, ...) drive kernels directly
    rather than compiled IR, so the pass pipeline cannot skew them; they
    are excluded here and covered by their own structural tests.
    """
    from repro.algorithms.asgcn import asgcn_layer
    from repro.algorithms.fastgcn import fastgcn_layer
    from repro.algorithms.graphsage import graphsage_layer
    from repro.algorithms.labor import labor_layer
    from repro.algorithms.ladies import ladies_layer
    from repro.algorithms.vrgcn import vrgcn_layer

    return {
        "graphsage": VerifySpec("graphsage", graphsage_layer, {"K": 4}),
        "labor": VerifySpec("labor", labor_layer, {"K": 4}),
        "ladies": VerifySpec("ladies", ladies_layer, {"K": 10}),
        "fastgcn": VerifySpec("fastgcn", fastgcn_layer, {"K": 10}),
        "asgcn": VerifySpec(
            "asgcn", asgcn_layer, {"K": 10}, tensors_fn=_asgcn_tensors
        ),
        "vrgcn": VerifySpec("vrgcn", vrgcn_layer, {"K": 3}),
        # ShaDow's expansion stage is the GraphSAGE layer program; the
        # induction step is deterministic and covered structurally.
        "shadow": VerifySpec("shadow", graphsage_layer, {"K": 6}),
    }


def verification_graph(
    num_nodes: int = 96, avg_degree: int = 8, seed: int = 5
) -> Matrix:
    """A small deterministic weighted graph for verification runs.

    Every node receives at least one in-edge (frontiers are never
    isolated) and edge weights span two orders of magnitude so that
    bias-dropping bugs shift marginals detectably.
    """
    rng = np.random.default_rng(seed)
    extra = num_nodes * max(avg_degree - 1, 1)
    src = np.concatenate(
        [rng.integers(0, num_nodes, num_nodes), rng.integers(0, num_nodes, extra)]
    )
    dst = np.concatenate([np.arange(num_nodes), rng.integers(0, num_nodes, extra)])
    keys = np.unique(src * num_nodes + dst)
    weights = (rng.random(len(keys)) ** 2 + 0.01).astype(np.float32)
    return from_edges(keys // num_nodes, keys % num_nodes, num_nodes, weights=weights)


def verify_algorithm(
    algorithm: str,
    graph: Matrix | None = None,
    frontiers: np.ndarray | None = None,
    *,
    trials: int = 200,
    alpha: float = 0.01,
    seed: int = 0,
    superbatch_batches: int | None = 3,
) -> EquivalenceReport:
    """Run the full equivalence check for one registered algorithm."""
    specs = builtin_specs()
    if algorithm not in specs:
        raise GSamplerError(
            f"no verification spec for {algorithm!r}; verifiable "
            f"algorithms: {sorted(specs)}"
        )
    spec = specs[algorithm]
    if graph is None:
        graph = verification_graph()
    if frontiers is None:
        frontiers = np.arange(min(12, graph.shape[1]))
    tensors = spec.tensors_fn(graph) if spec.tensors_fn is not None else None
    return check_distribution_equivalence(
        spec.layer_fn,
        graph,
        frontiers,
        constants=spec.constants,
        tensors=tensors,
        trials=trials,
        alpha=alpha,
        seed=seed,
        superbatch_batches=superbatch_batches if spec.superbatch else None,
        name=algorithm,
    )
