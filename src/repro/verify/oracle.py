"""Eager reference executor: the oracle every optimized variant answers to.

The oracle runs a *traced but unoptimized* program op-by-op — no pass
manager, no layout stamps, no fused kernels, no memory accounting.  Edge
arithmetic, broadcasts, reductions, SpMM, and SDDMM are recomputed in
plain NumPy over per-edge ``(row, col)`` index views, so a bug in any
compute kernel or in any IR pass cannot cancel itself out of the
comparison.  Only the two stochastic select primitives are shared with
the production path (they are unit-tested against closed-form
distributions separately); everything the compiler may rewrite is
recomputed independently here.

Because the oracle walks nodes in the same topological order and feeds
the select primitives identical inputs, a run with the same RNG stream
as an un-optimized compiled sampler must match it *exactly* — the
differential-testing layer — while distribution-level equivalence
against every optimized variant is established statistically by
:mod:`repro.verify.equivalence`.
"""

from __future__ import annotations

import numpy as np

from repro.core import new_rng
from repro.core.matrix import Matrix
from repro.errors import TraceError
from repro.ir.graph import DataFlowGraph, Node
from repro.ir.trace import trace
from repro.sampler import _unflatten
from repro.sparse import edge_endpoints, edge_values

__all__ = ["EagerOracle", "trace_oracle"]


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


_BINOPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "pow": np.power,
}

_UNOPS = {
    "relu": lambda x: np.maximum(x, 0.0),
    "softmax": _softmax,
    "exp": np.exp,
    "log": np.log,
}


class EagerOracle:
    """Executes an unoptimized trace op-by-op through reference code."""

    def __init__(
        self, ir: DataFlowGraph, graph: Matrix, structure: object
    ) -> None:
        self.ir = ir
        self.graph = graph
        self.structure = structure

    # ------------------------------------------------------------------
    def run(
        self,
        frontiers: np.ndarray,
        *,
        tensors: dict[str, np.ndarray] | None = None,
        rng: np.random.Generator | None = None,
    ) -> object:
        """Execute one mini-batch eagerly; same contract as
        :meth:`repro.sampler.CompiledSampler.run`."""
        rng = rng if rng is not None else new_rng(None)
        inputs: dict[str, object] = {
            "A": self.graph,
            "frontiers": np.asarray(frontiers),
        }
        inputs.update(tensors or {})
        env: dict[int, object] = {}
        for node in self.ir.nodes():
            handler = getattr(self, f"_op_{node.op}", None)
            if handler is None:
                raise TraceError(
                    f"eager oracle cannot execute op {node.op!r}; it only "
                    "runs unoptimized traces (compile-time ops like fused "
                    "kernels must never reach the oracle)"
                )
            args = [env[i] for i in node.inputs]
            env[node.node_id] = handler(node, args, inputs, rng)
        outputs = [env[i] for i in self.ir.outputs]
        return _unflatten(self.structure, outputs)

    # ------------------------------------------------------------------
    # Per-edge reference arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _edge_view(matrix: Matrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, cols, values)`` in the matrix's primary storage order."""
        storage = matrix.any_storage()
        rows, cols = edge_endpoints(storage)
        return rows, cols, edge_values(storage).astype(np.float64)

    # -- inputs --------------------------------------------------------
    def _op_input_graph(self, node, args, inputs, rng):
        value = inputs[node.attrs["name"]]
        if not isinstance(value, Matrix):
            raise TraceError(f"input {node.attrs['name']!r} must be a Matrix")
        return value

    def _op_input_tensor(self, node, args, inputs, rng):
        return np.asarray(inputs[node.attrs["name"]])

    def _op_const(self, node, args, inputs, rng):
        return node.attrs["_value"]

    # -- extract -------------------------------------------------------
    def _op_slice_cols(self, node, args, inputs, rng):
        matrix, idx = args
        return matrix.slice_cols(np.asarray(idx))

    def _op_slice_rows(self, node, args, inputs, rng):
        matrix, idx = args
        return matrix.slice_rows(np.asarray(idx))

    # -- compute (reference numpy over edge views) ---------------------
    def _op_map_scalar(self, node, args, inputs, rng):
        (matrix,) = args
        fn = _BINOPS[node.attrs["op"]]
        scalar = node.attrs["scalar"]
        values = self._edge_view(matrix)[2]
        out = fn(scalar, values) if node.attrs.get("reverse") else fn(values, scalar)
        return matrix.with_values(out)

    def _op_map_unary(self, node, args, inputs, rng):
        (matrix,) = args
        return matrix.with_values(_UNOPS[node.attrs["op"]](self._edge_view(matrix)[2]))

    def _op_map_combine(self, node, args, inputs, rng):
        a, b = args
        if a.nnz != b.nnz:
            raise TraceError("map_combine operands must share one topology")
        return a.with_values(
            _BINOPS[node.attrs["op"]](self._edge_view(a)[2], self._edge_view(b)[2])
        )

    def _op_map_tscalar(self, node, args, inputs, rng):
        matrix, tensor = args
        scalar = float(np.asarray(tensor).reshape(-1)[node.attrs["index"]])
        return matrix.with_values(
            _BINOPS[node.attrs["op"]](self._edge_view(matrix)[2], scalar)
        )

    def _op_map_broadcast(self, node, args, inputs, rng):
        matrix, vector = args
        rows, cols, values = self._edge_view(matrix)
        vector = np.asarray(vector, dtype=np.float64)
        per_edge = vector[rows] if node.attrs["axis"] == 0 else vector[cols]
        return matrix.with_values(_BINOPS[node.attrs["op"]](values, per_edge))

    def _op_reduce(self, node, args, inputs, rng):
        (matrix,) = args
        rows, cols, values = self._edge_view(matrix)
        axis = node.attrs["axis"]
        length = matrix.shape[0] if axis == 0 else matrix.shape[1]
        idx = rows if axis == 0 else cols
        op = node.attrs["op"]
        if op in ("sum", "mean"):
            out = np.zeros(length, dtype=np.float64)
            np.add.at(out, idx, values)
            if op == "mean":
                counts = np.zeros(length, dtype=np.int64)
                np.add.at(counts, idx, 1)
                out = np.divide(out, counts, out=np.zeros_like(out), where=counts > 0)
            return out
        if op == "max":
            out = np.full(length, -np.inf)
            np.maximum.at(out, idx, values)
            return out
        if op == "min":
            out = np.full(length, np.inf)
            np.minimum.at(out, idx, values)
            return out
        raise TraceError(f"eager oracle has no reduce op {op!r}")

    def _op_spmm(self, node, args, inputs, rng):
        matrix, dense = args
        rows, cols, values = self._edge_view(matrix)
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim == 1:
            out = np.zeros(matrix.shape[0], dtype=np.float64)
            np.add.at(out, rows, values * dense[cols])
        else:
            out = np.zeros((matrix.shape[0], dense.shape[1]), dtype=np.float64)
            np.add.at(out, rows, values[:, None] * dense[cols])
        return out

    def _op_sddmm(self, node, args, inputs, rng):
        matrix, row_feats, col_feats = args
        rows, cols, _ = self._edge_view(matrix)
        row_feats = np.asarray(row_feats, dtype=np.float64)
        col_feats = np.asarray(col_feats, dtype=np.float64)
        out = np.einsum("e...,e...->e", row_feats[rows], col_feats[cols])
        return matrix.with_values(out)

    # -- select (shared primitives, unit-tested separately) ------------
    def _op_individual_sample(self, node, args, inputs, rng):
        matrix = args[0]
        probs = args[1] if node.attrs.get("has_probs") else None
        return matrix.individual_sample(
            node.attrs["k"],
            probs,
            replace=node.attrs.get("replace", False),
            rng=rng,
        )

    def _op_labor_sample(self, node, args, inputs, rng):
        matrix = args[0]
        return matrix.labor_sample(node.attrs["k"], rng=rng)

    def _op_collective_sample(self, node, args, inputs, rng):
        matrix = args[0]
        probs = np.asarray(args[1]) if node.attrs.get("has_probs") else None
        return matrix.collective_sample(
            node.attrs["k"],
            probs,
            replace=node.attrs.get("replace", False),
            rng=rng,
        )

    # -- finalize ------------------------------------------------------
    def _op_row(self, node, args, inputs, rng):
        return args[0].row()

    def _op_column(self, node, args, inputs, rng):
        return args[0].column()

    def _op_compact(self, node, args, inputs, rng):
        return args[0].compact(node.attrs["axis"])

    # -- dense tensor ops ----------------------------------------------
    def _op_t_binop(self, node, args, inputs, rng):
        a, b = (np.asarray(x, dtype=np.float64) for x in args)
        return _BINOPS[node.attrs["op"]](a, b)

    def _op_t_binop_scalar(self, node, args, inputs, rng):
        (a,) = args
        a = np.asarray(a, dtype=np.float64)
        scalar = node.attrs["scalar"]
        fn = _BINOPS[node.attrs["op"]]
        return fn(scalar, a) if node.attrs.get("reverse") else fn(a, scalar)

    def _op_t_unop(self, node, args, inputs, rng):
        return _UNOPS[node.attrs["op"]](np.asarray(args[0], dtype=np.float64))

    def _op_t_sum(self, node, args, inputs, rng):
        return np.asarray(args[0], dtype=np.float64).sum()

    def _op_t_index(self, node, args, inputs, rng):
        base, idx = args
        return np.asarray(base)[np.asarray(idx)]

    def _op_t_matmul(self, node, args, inputs, rng):
        a, b = (np.asarray(x, dtype=np.float64) for x in args)
        return a @ b


def trace_oracle(
    fn,
    graph: Matrix,
    example_frontiers: np.ndarray,
    *,
    constants: dict | None = None,
    tensors: dict[str, np.ndarray] | None = None,
) -> EagerOracle:
    """Trace ``fn`` and wrap the *unoptimized* IR in an eager oracle."""
    ir, info = trace(
        fn, graph, example_frontiers, constants=constants, tensors=tensors
    )
    return EagerOracle(ir, graph, info["structure"])
