"""IR invariant checker: validates every pass transition in debug mode.

Each optimization pass must leave the data-flow graph in a state the
interpreter can execute and the next pass can reason about.  The checks
here encode that contract explicitly:

* **structure** — node-table key consistency, def-before-use topological
  order, registered inputs/outputs exist;
* **operand kinds** — every operator receives the value kinds it
  expects (a matrix where a matrix is consumed, a tensor where an index
  or dense operand is consumed), including the ``has_probs`` arity
  discipline of the stochastic select ops;
* **layout legality** — layout stamps name a real sparse layout and
  appear only on structure-changing matrix operators (Section 4.3:
  compute/finalize ops adopt their upstream layout and must never carry
  their own decision);
* **batch-ptr discipline** — after :class:`SuperBatchPass` there is at
  most one ``sb_batch_ptr`` node, every super-batch operator references
  it at the documented operand position, and no batch-mixing plain
  operator survives the rewrite.

:class:`~repro.ir.passes.base.PassManager` runs :func:`check_invariants`
after every pass when constructed with ``debug=True``; the raised
:class:`~repro.errors.InvariantError` names the pass stage so a broken
pass is identified immediately.
"""

from __future__ import annotations

from repro.errors import InvariantError
from repro.ir.graph import DataFlowGraph, Node, MATRIX_OPS, STRUCTURE_OPS
from repro.sparse import LAYOUTS

__all__ = ["check_invariants"]

#: Expected input kinds per op.  Tokens: ``matrix`` / ``tensor`` /
#: ``ptr`` (the sb_batch_ptr node) / ``any``; a ``?`` prefix marks an
#: optional trailing operand, ``*`` a variadic tail.
_INPUT_KINDS: dict[str, tuple[str, ...]] = {
    "input_graph": (),
    "input_tensor": (),
    "input_precomputed": (),
    "const": (),
    "sb_batch_ptr": (),
    "slice_cols": ("matrix", "tensor"),
    "slice_rows": ("matrix", "tensor"),
    "map_scalar": ("matrix",),
    "map_unary": ("matrix",),
    "map_combine": ("matrix", "matrix"),
    "map_broadcast": ("matrix", "tensor"),
    "map_tscalar": ("matrix", "tensor"),
    "reduce": ("matrix",),
    "spmm": ("matrix", "tensor"),
    "sddmm": ("matrix", "tensor", "tensor"),
    "row": ("matrix",),
    "column": ("matrix",),
    "compact": ("matrix",),
    "with_values": ("matrix", "tensor"),
    "individual_sample": ("matrix", "?any"),
    "collective_sample": ("matrix", "?tensor"),
    "fused_extract_select": ("matrix", "tensor", "?tensor"),
    "fused_extract_reduce": ("matrix", "tensor"),
    "fused_map_chain": ("matrix", "*any"),
    "fused_map_reduce": ("matrix", "*any"),
    "sb_slice_cols": ("matrix", "tensor", "ptr"),
    "sb_collective_sample": ("matrix", "ptr", "?tensor"),
    "sb_fused_extract_reduce": ("matrix", "tensor", "ptr"),
    "t_binop": ("tensor", "tensor"),
    "t_binop_scalar": ("tensor",),
    "t_unop": ("tensor",),
    "t_sum": ("tensor",),
    "t_index": ("tensor", "tensor"),
    "t_matmul": ("tensor", "tensor"),
}

#: Stochastic select ops whose arity depends on ``has_probs``.
_PROBS_ARITY = {
    "individual_sample": 1,
    "collective_sample": 1,
    "fused_extract_select": 2,
    "sb_collective_sample": 2,
}


def _value_kind(node: Node) -> str:
    """The kind of value a node produces."""
    if node.op == "input_precomputed":
        return "any"  # hoisted values may be matrices or tensors
    return "matrix" if node.op in MATRIX_OPS else "tensor"


def _kind_matches(expected: str, actual: str) -> bool:
    if expected == "any" or actual == "any":
        return True
    if expected == "ptr":
        return False  # ptr operands are checked by node identity, not kind
    return expected == actual


class _Checker:
    def __init__(self, ir: DataFlowGraph, stage: str) -> None:
        self.ir = ir
        self.stage = stage

    def fail(self, message: str) -> None:
        prefix = f"[{self.stage}] " if self.stage else ""
        raise InvariantError(f"{prefix}{message}")

    # ------------------------------------------------------------------
    def check_structure(self) -> None:
        seen: set[int] = set()
        for key, node in zip(self.ir.positions(), self.ir.nodes()):
            if key != node.node_id:
                self.fail(
                    f"node table key {key} disagrees with node id "
                    f"{node.node_id} ({node.op})"
                )
            for dep in node.inputs:
                if dep not in self.ir:
                    self.fail(
                        f"node {node.node_id} ({node.op}) reads undefined "
                        f"value %{dep}"
                    )
                if dep not in seen:
                    self.fail(
                        f"node {node.node_id} ({node.op}) uses %{dep} "
                        "before its definition (topological order broken)"
                    )
            if node.op.startswith("input") and node.inputs:
                self.fail(
                    f"input node {node.node_id} ({node.op}) must not "
                    "consume other nodes"
                )
            seen.add(node.node_id)
        if not self.ir.outputs:
            self.fail("graph has no outputs")
        for out in self.ir.outputs:
            if out not in self.ir:
                self.fail(f"output %{out} does not exist")
        for inp in self.ir.input_ids:
            if inp not in self.ir:
                self.fail(f"registered input %{inp} does not exist")

    # ------------------------------------------------------------------
    def check_operand_kinds(self) -> None:
        for node in self.ir.nodes():
            spec = _INPUT_KINDS.get(node.op)
            if spec is None:
                continue  # unknown/experimental op: structural checks only
            min_arity = sum(1 for s in spec if not s.startswith(("?", "*")))
            variadic = any(s.startswith("*") for s in spec)
            max_arity = len(spec) if not variadic else None
            n = len(node.inputs)
            if n < min_arity or (max_arity is not None and n > max_arity):
                self.fail(
                    f"node {node.node_id} ({node.op}) has {n} inputs; "
                    f"expected {min_arity}"
                    + ("" if max_arity == min_arity else f"..{max_arity or 'n'}")
                )
            for pos, dep in enumerate(node.inputs):
                token = spec[pos] if pos < len(spec) else spec[-1]
                expected = token.lstrip("?*")
                if expected == "ptr":
                    continue  # checked in check_batch_ptr_discipline
                actual = _value_kind(self.ir.node(dep))
                if not _kind_matches(expected, actual):
                    self.fail(
                        f"node {node.node_id} ({node.op}) input {pos} "
                        f"(%{dep}, {self.ir.node(dep).op}) is a {actual}; "
                        f"expected a {expected}"
                    )
            probs_extra = _PROBS_ARITY.get(node.op)
            if probs_extra is not None:
                base = min_arity
                want = base + 1 if node.attrs.get("has_probs") else base
                if n != want:
                    self.fail(
                        f"node {node.node_id} ({node.op}) has_probs="
                        f"{bool(node.attrs.get('has_probs'))} but {n} "
                        f"inputs (expected {want})"
                    )

    # ------------------------------------------------------------------
    def check_layout_legality(self) -> None:
        for node in self.ir.nodes():
            if node.layout is not None:
                if node.layout not in LAYOUTS:
                    self.fail(
                        f"node {node.node_id} ({node.op}) stamped with "
                        f"unknown layout {node.layout!r}; expected one of "
                        f"{LAYOUTS}"
                    )
                if node.op not in STRUCTURE_OPS:
                    self.fail(
                        f"node {node.node_id} ({node.op}) carries a layout "
                        "decision but is not a structure operator; "
                        "compute/finalize ops must adopt upstream layout"
                    )
            if node.compact_rows and node.op not in STRUCTURE_OPS:
                self.fail(
                    f"node {node.node_id} ({node.op}) requests row "
                    "compaction but is not a structure operator"
                )

    # ------------------------------------------------------------------
    def check_batch_ptr_discipline(self) -> None:
        ptrs = [n for n in self.ir.nodes() if n.op == "sb_batch_ptr"]
        sb_ops = [
            n for n in self.ir.nodes()
            if n.op.startswith("sb_") and n.op != "sb_batch_ptr"
        ]
        if len(ptrs) > 1:
            self.fail(
                f"{len(ptrs)} sb_batch_ptr nodes present; the super-batch "
                "rewrite must introduce exactly one"
            )
        if sb_ops and not ptrs:
            self.fail(
                "super-batch operators present without an sb_batch_ptr node"
            )
        if not ptrs:
            return
        ptr = ptrs[0]
        if not sb_ops:
            self.fail(
                f"sb_batch_ptr %{ptr.node_id} has no super-batch consumers; "
                "the rewrite pass must remove an unused pointer"
            )
        ptr_positions = {
            "sb_slice_cols": -1,
            "sb_collective_sample": 1,
            "sb_fused_extract_reduce": -1,
        }
        for node in sb_ops:
            pos = ptr_positions.get(node.op)
            if pos is None:
                continue
            if not node.inputs or node.inputs[pos] != ptr.node_id:
                self.fail(
                    f"node {node.node_id} ({node.op}) does not reference "
                    f"sb_batch_ptr %{ptr.node_id} at operand {pos}"
                )
        # After the rewrite no batch-mixing plain op may survive: every
        # collective sample and every base-graph column slice must have
        # been converted to its segmented form.
        for node in self.ir.nodes():
            if node.op == "collective_sample":
                self.fail(
                    f"node {node.node_id}: plain collective_sample survives "
                    "in a super-batched graph (would mix batches)"
                )
            if node.op == "slice_cols":
                src = self.ir.node(node.inputs[0])
                meta = src.attrs.get("_meta")
                if src.op in ("input_graph", "input_precomputed") and getattr(
                    meta, "is_base_graph", False
                ):
                    self.fail(
                        f"node {node.node_id}: base-graph slice_cols not "
                        "rewritten to sb_slice_cols (row spaces would be "
                        "shared across batches)"
                    )


def check_invariants(ir: DataFlowGraph, *, stage: str = "") -> None:
    """Validate the full IR invariant set; raise
    :class:`~repro.errors.InvariantError` (naming ``stage``) on the
    first violation."""
    checker = _Checker(ir, stage)
    checker.check_structure()
    checker.check_operand_kinds()
    checker.check_layout_legality()
    checker.check_batch_ptr_discipline()
