"""Dynamic-graph equivalence: compaction bit-identity + overlay marginals.

The dynamic subsystem's correctness contract has two halves:

* **Bit-identity after compaction.**  A :class:`~repro.dynamic.DeltaGraph`
  that has absorbed an update stream and then :meth:`compact`-ed must be
  *array-identical* — indptr, rows, edge ids, and values — to a CSC
  built fresh by :func:`~repro.core.matrix.from_edges` over the same
  live edge set in canonical ``(dst, src)`` order.  On top of the
  storage check, a compiled sampler run over both graphs with the same
  RNG must emit bit-identical samples (the "compacted sessions replay
  fresh-CSR sessions" guarantee the serve layer leans on).
* **Statistical equivalence before compaction.**  The cheap overlay
  :meth:`snapshot` orders each column differently (base survivors
  first, inserts after) than a canonical rebuild, so it cannot be
  bit-identical — but the samplers must draw from the *same
  distribution* over it.  That half reuses the chi-square/KS machinery
  from :mod:`repro.verify.equivalence`: per-edge selection marginals
  from the snapshot graph versus the rebuilt oracle graph.

CLI: ``gsampler-repro verify dynamic`` (also folded into ``verify all``).
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.core import new_rng
from repro.core.matrix import Matrix, from_edges
from repro.dynamic import DeltaGraph, UpdateSpec, generate_update_stream
from repro.errors import GSamplerError
from repro.sampler import compile_sampler
from repro.verify.equivalence import (
    _SEED_STRIDE,
    VariantCheck,
    _sample_matrix,
    builtin_specs,
    collect_edge_marginals,
    compare_to_oracle,
    verification_graph,
)

__all__ = ["DynamicCheck", "check_dynamic_equivalence", "graph_digest"]


def graph_digest(matrix: Matrix) -> str:
    """sha256 over a graph's CSC storage arrays (the bit-identity key)."""
    csc = matrix.get("csc")
    parts = [csc.indptr, csc.rows, csc.edge_ids]
    if csc.values is not None:
        parts.append(csc.values)
    digest = hashlib.sha256()
    for arr in parts:
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class DynamicCheck:
    """Outcome of one dynamic-graph equivalence run."""

    algorithm: str
    trials: int
    #: Streamed edges applied before the checks.
    ingested: int
    deleted: int
    #: Compacted CSC arrays identical to a fresh ``from_edges`` build.
    storage_identical: bool
    compact_digest: str
    fresh_digest: str
    #: Same-RNG samples over compacted vs fresh graphs are identical.
    samples_identical: bool
    #: Pre-compaction snapshot marginals vs the rebuilt-graph oracle.
    marginals: VariantCheck

    @property
    def passed(self) -> bool:
        return (
            self.storage_identical
            and self.samples_identical
            and self.marginals.passed
        )

    def describe(self) -> str:
        verdict = "ok" if self.passed else "FAIL"
        return (
            f"dynamic[{self.algorithm}]: storage "
            f"{'==' if self.storage_identical else '!='} fresh "
            f"({self.compact_digest[:12]}), samples "
            f"{'==' if self.samples_identical else '!='}, "
            f"{self.marginals.describe()} [{verdict}]"
        )


def check_dynamic_equivalence(
    algorithm: str = "graphsage",
    *,
    updates: UpdateSpec | None = None,
    num_nodes: int = 96,
    avg_degree: int = 8,
    graph_seed: int = 5,
    trials: int = 200,
    alpha: float = 0.01,
    seed: int = 0,
) -> DynamicCheck:
    """Run both halves of the dynamic-graph equivalence contract.

    Builds the standard weighted verification graph, streams a seeded
    insert/delete workload into a :class:`DeltaGraph`, then checks (a)
    the pre-compaction snapshot samples like a fresh rebuild of the same
    edge set (chi-square/KS) and (b) the compacted graph *is* that fresh
    rebuild, bit for bit, storage and samples alike.
    """
    if trials < 1:
        raise GSamplerError(
            f"verification needs at least 1 trial, got {trials}"
        )
    if not 0.0 < alpha < 1.0:
        raise GSamplerError(f"alpha must be in (0, 1), got {alpha}")
    specs = builtin_specs()
    if algorithm not in specs:
        raise GSamplerError(
            f"no verification spec for {algorithm!r}; verifiable "
            f"algorithms: {sorted(specs)}"
        )
    spec = specs[algorithm]
    if updates is None:
        updates = UpdateSpec(
            num_edges=192, delete_fraction=0.25, seed=graph_seed
        )

    base = verification_graph(num_nodes, avg_degree, seed=graph_seed)
    delta = DeltaGraph(base)
    for batch in generate_update_stream(updates, num_nodes=num_nodes):
        delta.apply(batch)

    # Pre-compaction overlay view, and the canonical rebuild of the
    # exact same live edge set (the oracle for both halves).
    snapshot = delta.snapshot()
    src, dst, val = delta.canonical_edges()
    fresh = from_edges(src, dst, num_nodes, weights=val, layout="csc")
    compacted = delta.compact()

    # -- half 1: bit-identity ------------------------------------------
    a, b = compacted.get("csc"), fresh.get("csc")
    storage_identical = (
        np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.rows, b.rows)
        and np.array_equal(a.edge_ids, b.edge_ids)
        and np.array_equal(a.values, b.values)
    )

    frontiers = np.arange(min(12, num_nodes))
    tensors = spec.tensors_fn(fresh) if spec.tensors_fn is not None else None
    compact_sampler = compile_sampler(
        spec.layer_fn,
        compacted,
        frontiers,
        constants=spec.constants,
        tensors=tensors,
    )
    fresh_sampler = compile_sampler(
        spec.layer_fn,
        fresh,
        frontiers,
        constants=spec.constants,
        tensors=tensors,
    )
    sample_a = _sample_matrix(
        compact_sampler.run(frontiers, tensors=tensors, rng=new_rng(seed))
    ).to_coo_arrays()
    sample_b = _sample_matrix(
        fresh_sampler.run(frontiers, tensors=tensors, rng=new_rng(seed))
    ).to_coo_arrays()
    samples_identical = all(
        np.array_equal(x, y) for x, y in zip(sample_a, sample_b)
    )

    # -- half 2: snapshot marginals vs rebuilt oracle ------------------
    snap_sampler = compile_sampler(
        spec.layer_fn,
        snapshot,
        frontiers,
        constants=spec.constants,
        tensors=tensors,
    )
    oracle_counts, oracle_sums = collect_edge_marginals(
        lambda rng: _sample_matrix(
            fresh_sampler.run(frontiers, tensors=tensors, rng=rng)
        ),
        trials=trials,
        seed=seed,
    )
    snap_counts, snap_sums = collect_edge_marginals(
        lambda rng: _sample_matrix(
            snap_sampler.run(frontiers, tensors=tensors, rng=rng)
        ),
        trials=trials,
        seed=seed + _SEED_STRIDE,
    )
    marginals = compare_to_oracle(
        oracle_counts,
        oracle_sums,
        snap_counts,
        snap_sums,
        name="snapshot-vs-rebuilt",
        trials=trials,
        alpha=alpha,
        num_tests=1,
    )

    return DynamicCheck(
        algorithm=algorithm,
        trials=trials,
        ingested=delta.inserted_edges,
        deleted=delta.deleted_edges,
        storage_identical=storage_identical,
        compact_digest=graph_digest(compacted),
        fresh_digest=graph_digest(fresh),
        samples_identical=samples_identical,
        marginals=marginals,
    )
