"""Statistical tests for distribution-equivalence checking.

Sampler bugs rarely crash — they skew neighbor-selection distributions
(the failure mode C-SAW and GNNSampler both warn about), so the verifier
compares *empirical marginals* between the eager oracle and each
optimized variant.  Two tests cover the two data shapes involved:

* :func:`chi2_homogeneity` — a two-sample chi-square test over per-edge
  selection counts (categorical marginals), with small-cell pooling so
  the asymptotic distribution stays valid at modest trial counts;
* :func:`ks_2samp` — a two-sample Kolmogorov-Smirnov test over
  continuous per-trial summaries (e.g. sampled edge-value mass).

Everything is pure NumPy + math: the package's only hard dependency is
numpy, so the chi-square and Kolmogorov tail functions are implemented
directly (regularized incomplete gamma via series/continued fraction;
the alternating Kolmogorov series).  ``scipy``, when present, is used
only by the test suite to cross-validate these implementations.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = [
    "TestResult",
    "bonferroni",
    "chi2_homogeneity",
    "chi2_sf",
    "ks_2samp",
    "pool_small_cells",
]


@dataclasses.dataclass(frozen=True)
class TestResult:
    """Outcome of one hypothesis test."""

    __test__ = False  # a result type, not a pytest collection target

    statistic: float
    p_value: float
    dof: int = 0


# ---------------------------------------------------------------------------
# Chi-square survival function (pure python/numpy)
# ---------------------------------------------------------------------------
def _gamma_q(a: float, x: float, *, max_iter: int = 500, eps: float = 1e-13) -> float:
    """Regularized upper incomplete gamma Q(a, x) = Γ(a, x) / Γ(a).

    Series expansion below the a+1 crossover, modified Lentz continued
    fraction above it — the classic numerically stable split.
    """
    if a <= 0.0:
        raise ValueError(f"gamma Q requires a > 0, got {a}")
    if x < 0.0:
        raise ValueError(f"gamma Q requires x >= 0, got {x}")
    if x == 0.0:
        return 1.0
    log_prefactor = -x + a * math.log(x) - math.lgamma(a)
    if x < a + 1.0:
        # P(a, x) by series; Q = 1 - P.
        term = 1.0 / a
        total = term
        denom = a
        for _ in range(max_iter):
            denom += 1.0
            term *= x / denom
            total += term
            if abs(term) < abs(total) * eps:
                break
        p = total * math.exp(log_prefactor)
        return min(1.0, max(0.0, 1.0 - p))
    # Q(a, x) by continued fraction (modified Lentz).
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, max_iter):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return min(1.0, max(0.0, math.exp(log_prefactor) * h))


def chi2_sf(x: float, df: int) -> float:
    """Survival function (upper tail) of the chi-square distribution."""
    if df <= 0:
        raise ValueError(f"chi-square needs df >= 1, got {df}")
    if x <= 0.0:
        return 1.0
    return _gamma_q(df / 2.0, x / 2.0)


# ---------------------------------------------------------------------------
# Two-sample chi-square homogeneity over categorical counts
# ---------------------------------------------------------------------------
def pool_small_cells(
    counts_a: np.ndarray,
    counts_b: np.ndarray,
    *,
    min_expected: float = 5.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge rare cells so every expected count reaches ``min_expected``.

    The chi-square approximation degrades when expected cell counts are
    small; the standard remedy is pooling sparse categories.  Cells are
    merged smallest-total-first into a single reservoir cell until every
    remaining cell's expected count (under the pooled margins) clears
    the threshold in *both* samples.
    """
    a = np.asarray(counts_a, dtype=np.float64)
    b = np.asarray(counts_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("count vectors must be aligned to the same cells")
    n_a, n_b = a.sum(), b.sum()
    total = n_a + n_b
    if total == 0:
        return a, b
    # A cell with combined total t has expected counts t * n_a/total and
    # t * n_b/total; the binding constraint is the smaller group share.
    share = min(n_a, n_b) / total
    if share == 0.0:
        return a, b
    min_total = min_expected / share
    order = np.argsort(a + b)
    pooled_a: list[float] = []
    pooled_b: list[float] = []
    reservoir_a = reservoir_b = 0.0
    for idx in order:
        cell_total = a[idx] + b[idx]
        if cell_total < min_total or reservoir_a + reservoir_b < min_total:
            reservoir_a += a[idx]
            reservoir_b += b[idx]
        else:
            pooled_a.append(a[idx])
            pooled_b.append(b[idx])
    if reservoir_a + reservoir_b > 0:
        pooled_a.append(reservoir_a)
        pooled_b.append(reservoir_b)
    return np.asarray(pooled_a), np.asarray(pooled_b)


def chi2_homogeneity(
    counts_a: np.ndarray,
    counts_b: np.ndarray,
    *,
    min_expected: float = 5.0,
) -> TestResult:
    """Two-sample chi-square test: do both count vectors share one
    underlying categorical distribution?

    ``counts_a``/``counts_b`` are aligned per-cell observation counts
    (e.g. how often each edge was sampled across trials).  Returns the
    statistic, degrees of freedom (#cells - 1 after pooling), and the
    asymptotic p-value.  A p-value of 1.0 with 0 dof means there was
    nothing to distinguish (at most one populated cell).
    """
    a, b = pool_small_cells(counts_a, counts_b, min_expected=min_expected)
    n_a, n_b = a.sum(), b.sum()
    if n_a == 0 and n_b == 0:
        return TestResult(statistic=0.0, p_value=1.0, dof=0)
    if n_a == 0 or n_b == 0:
        # One sampler produced nothing at all: maximally inhomogeneous.
        return TestResult(statistic=math.inf, p_value=0.0, dof=max(len(a) - 1, 1))
    total = n_a + n_b
    cell_totals = a + b
    keep = cell_totals > 0
    a, b, cell_totals = a[keep], b[keep], cell_totals[keep]
    if len(cell_totals) < 2:
        return TestResult(statistic=0.0, p_value=1.0, dof=0)
    expected_a = cell_totals * (n_a / total)
    expected_b = cell_totals * (n_b / total)
    stat = float(
        np.sum((a - expected_a) ** 2 / expected_a)
        + np.sum((b - expected_b) ** 2 / expected_b)
    )
    dof = len(cell_totals) - 1
    return TestResult(statistic=stat, p_value=chi2_sf(stat, dof), dof=dof)


# ---------------------------------------------------------------------------
# Two-sample Kolmogorov-Smirnov
# ---------------------------------------------------------------------------
def _kolmogorov_sf(lam: float, *, terms: int = 100, eps: float = 1e-10) -> float:
    """Survival function of the Kolmogorov distribution,
    Q(λ) = 2 Σ_{j≥1} (-1)^{j-1} exp(-2 j² λ²)."""
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for j in range(1, terms + 1):
        term = math.exp(-2.0 * j * j * lam * lam)
        total += term if j % 2 == 1 else -term
        if term < eps:
            break
    return min(1.0, max(0.0, 2.0 * total))


def ks_2samp(sample_a: np.ndarray, sample_b: np.ndarray) -> TestResult:
    """Two-sample KS test with the asymptotic p-value approximation."""
    a = np.sort(np.asarray(sample_a, dtype=np.float64))
    b = np.sort(np.asarray(sample_b, dtype=np.float64))
    n_a, n_b = len(a), len(b)
    if n_a == 0 or n_b == 0:
        raise ValueError("KS test requires non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / n_a
    cdf_b = np.searchsorted(b, grid, side="right") / n_b
    d = float(np.max(np.abs(cdf_a - cdf_b)))
    n_eff = n_a * n_b / (n_a + n_b)
    lam = (math.sqrt(n_eff) + 0.12 + 0.11 / math.sqrt(n_eff)) * d
    return TestResult(statistic=d, p_value=_kolmogorov_sf(lam), dof=0)


def bonferroni(p_value: float, num_tests: int) -> float:
    """Bonferroni-adjusted p-value: ``min(1, p * m)``."""
    if num_tests < 1:
        raise ValueError(f"num_tests must be >= 1, got {num_tests}")
    return min(1.0, p_value * num_tests)
