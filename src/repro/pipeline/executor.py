"""The pipelined epoch executor and its serial-vs-pipelined harness.

:class:`PipelinedTrainer` schedules every training epoch across three
simulated device queues:

* ``sample``   — the sampling pipeline's kernels (on the sampling device);
* ``transfer`` — per-batch feature gathers, PCIe-bound for host-resident
  features, with a :class:`~repro.cache.FeatureCache` short-circuiting
  hot rows to device memory;
* ``compute``  — the model's forward/backward launches.

Dependencies mirror a real prefetching loop: batch ``i``'s transfer
waits on its sampling, its compute waits on its transfer, queues
serialize internally, and sampling runs at most ``prefetch_depth``
batches ahead of compute (the staging-buffer bound).  Because the
schedule only moves *accounting* onto queue timelines — the Python
execution order is the serial one — sampled matrices, losses, and
trained weights are bit-identical to :class:`~repro.learning.Trainer`;
only the simulated clock changes, from the sum of stage times to the
makespan of their overlap.
"""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np

from repro.algorithms.base import Pipeline
from repro.cache import DEFAULT_CACHE_RATIO, CacheStats, FeatureCache
from repro.core import minibatches
from repro.datasets import Dataset
from repro.device import DeviceSpec, ExecutionContext
from repro.errors import ShapeError
from repro.learning.models import SampledGNN
from repro.learning.trainer import Trainer, TrainResult
from repro.profile.spans import Profiler

#: How many batches the sampler may run ahead of the trainer; 2 is the
#: classic double-buffering depth (one batch in flight per stage).
DEFAULT_PREFETCH_DEPTH = 2


@dataclasses.dataclass(frozen=True)
class QueueReport:
    """One queue's timeline summary for an epoch run."""

    queue: str
    device: str
    busy_seconds: float
    end_seconds: float
    launches: int

    @property
    def utilization(self) -> float:
        """Occupied fraction of the full makespan this queue ran under."""
        return self.busy_seconds / self.end_seconds if self.end_seconds else 0.0


@dataclasses.dataclass
class PipelinedTrainResult(TrainResult):
    """A :class:`TrainResult` whose clock is the queue-overlap makespan.

    ``total_seconds`` is the max over queue end times;
    ``sampling_seconds``/``training_seconds`` are the busy (occupied)
    seconds of the sampling context and training context respectively,
    so they can sum to more than ``total_seconds`` — that surplus *is*
    the overlap win.
    """

    prefetch_depth: int = DEFAULT_PREFETCH_DEPTH
    queue_reports: list[QueueReport] = dataclasses.field(default_factory=list)
    cache_stats: CacheStats | None = None

    @property
    def serialized_seconds(self) -> float:
        """What the same work would cost with no overlap at all."""
        return sum(r.busy_seconds for r in self.queue_reports)

    @property
    def overlap_reduction(self) -> float:
        """Fractional time saved vs running the queues back-to-back."""
        serial = self.serialized_seconds
        if serial <= 0.0:
            return 0.0
        return 1.0 - self.total_seconds / serial


class PipelinedTrainer(Trainer):
    """Mini-batch trainer that overlaps sampling, transfer, and compute.

    Accepts everything :class:`~repro.learning.Trainer` does, plus:

    prefetch_depth:
        Staging-buffer bound: sampling of batch ``i`` may not start
        before compute of batch ``i - prefetch_depth`` finished.  Must
        be at least 1; 2 (the default) gives classic double buffering.
    cache_ratio:
        Fraction of nodes whose feature rows are pinned on the training
        device (degree-ordered; see :class:`~repro.cache.FeatureCache`).
        ``0.0`` disables caching.  The pinned bytes are charged to the
        training context's memory pool, so an over-large ratio is
        evicted down (or refused) against that pool's capacity.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        model: SampledGNN,
        dataset: Dataset,
        *,
        device: DeviceSpec,
        train_device: DeviceSpec | None = None,
        batch_size: int = 1024,
        lr: float = 0.05,
        seed: int = 0,
        prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
        cache_ratio: float = DEFAULT_CACHE_RATIO,
    ) -> None:
        if prefetch_depth < 1:
            raise ShapeError(
                f"prefetch depth must be at least 1, got {prefetch_depth}"
            )
        super().__init__(
            pipeline,
            model,
            dataset,
            device=device,
            train_device=train_device,
            batch_size=batch_size,
            lr=lr,
            seed=seed,
        )
        self.prefetch_depth = prefetch_depth
        self.cache_ratio = cache_ratio

    # ------------------------------------------------------------------
    def train(
        self,
        epochs: int,
        *,
        max_batches_per_epoch: int | None = None,
        profiler: Profiler | None = None,
    ) -> PipelinedTrainResult:
        sample_ctx = ExecutionContext(
            self.device, graph_on_device=self.dataset.graph_on_device
        )
        train_ctx = ExecutionContext(
            self.train_device, graph_on_device=self.dataset.graph_on_device
        )
        if profiler is not None:
            profiler.attach(sample_ctx)
            train_ctx.profiler = profiler
        cache: FeatureCache | None = None
        if self.cache_ratio > 0.0:
            cache = FeatureCache.from_dataset(
                self.dataset, ratio=self.cache_ratio, pool=train_ctx.memory
            )

        def span(name: str, category: str, **attrs: object):
            if profiler is None:
                return contextlib.nullcontext()
            return profiler.span(name, category, **attrs)

        acc_history: list[float] = []
        last_loss = float("nan")
        # Completion time of each batch's compute, indexed per epoch; the
        # prefetch window looks back ``prefetch_depth`` entries.
        for epoch in range(epochs):
            batches = minibatches(
                self.dataset.train_ids, self.batch_size, shuffle=True, rng=self.rng
            )
            if max_batches_per_epoch is not None:
                batches = batches[:max_batches_per_epoch]
            epoch_acc: list[float] = []
            compute_done: list[float] = []
            with span("epoch", "epoch", index=epoch, pipelined=True):
                for i, batch in enumerate(batches):
                    # Staging-buffer bound: the sampler may run at most
                    # prefetch_depth batches ahead of the trainer.
                    slot_free = (
                        compute_done[i - self.prefetch_depth]
                        if i >= self.prefetch_depth
                        else 0.0
                    )
                    with span(f"batch[{i}]", "batch", size=len(batch)):
                        with sample_ctx.on_queue("sample", not_before=slot_free):
                            sample = self.pipeline.sample_batch(
                                batch, ctx=sample_ctx, rng=self.rng
                            )
                        sampled_at = sample_ctx.queue("sample").ready
                        with train_ctx.on_queue(
                            "transfer", not_before=sampled_at
                        ):
                            self._gather_features(sample, train_ctx, cache)
                        transferred_at = train_ctx.queue("transfer").ready
                        with train_ctx.on_queue(
                            "compute", not_before=transferred_at
                        ):
                            loss, acc = self._compute_batch(sample, train_ctx)
                        compute_done.append(train_ctx.queue("compute").ready)
                    last_loss = loss
                    epoch_acc.append(acc)
                if cache is not None:
                    stats = cache.epoch_stats()
                    with span(
                        f"cache[{epoch}]",
                        "cache",
                        hits=stats.hits,
                        misses=stats.misses,
                        hit_rate=round(stats.hit_rate, 4),
                        cached_rows=stats.cached_rows,
                    ):
                        pass
            acc_history.append(float(np.mean(epoch_acc)) if epoch_acc else 0.0)

        reports = [
            QueueReport(
                queue=q.name,
                device=ctx.device.name,
                busy_seconds=q.busy_seconds,
                end_seconds=q.ready,
                launches=q.launches,
            )
            for ctx in (sample_ctx, train_ctx)
            for q in ctx.queue_stats().values()
        ]
        return PipelinedTrainResult(
            epochs=epochs,
            final_accuracy=acc_history[-1] if acc_history else 0.0,
            final_loss=last_loss,
            total_seconds=max(sample_ctx.elapsed, train_ctx.elapsed),
            sampling_seconds=sample_ctx.busy_seconds,
            training_seconds=train_ctx.busy_seconds,
            accuracy_history=acc_history,
            prefetch_depth=self.prefetch_depth,
            queue_reports=reports,
            cache_stats=cache.epoch_stats() if cache is not None else None,
        )


# ----------------------------------------------------------------------
# Serial-vs-pipelined comparison cell (CLI + benchmarks)
# ----------------------------------------------------------------------

#: Trainable algorithm configurations the comparison cell understands
#: (the two Table-8 workloads).
TRAINABLE_CONFIGS: dict[str, tuple[str, dict, dict, int]] = {
    "graphsage": ("GraphSAGEModel", dict(fanouts=(5, 10)), {}, 2),
    "ladies": ("LadiesGCN", dict(layer_width=256, num_layers=2), {}, 2),
}


def _build_model(algorithm: str, dataset: Dataset, seed: int) -> SampledGNN:
    from repro.learning import GraphSAGEModel, LadiesGCN

    model_name, _, _, num_layers = TRAINABLE_CONFIGS[algorithm]
    model_cls = {"GraphSAGEModel": GraphSAGEModel, "LadiesGCN": LadiesGCN}[
        model_name
    ]
    return model_cls(
        dataset.features.shape[1],
        32,
        dataset.num_classes,
        num_layers=num_layers,
        rng=np.random.default_rng(seed),
    )


def run_pipeline_cell(
    algorithm: str,
    dataset: Dataset,
    *,
    device: DeviceSpec,
    train_device: DeviceSpec | None = None,
    epochs: int = 1,
    batch_size: int = 256,
    max_batches: int | None = 8,
    prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
    cache_ratio: float = DEFAULT_CACHE_RATIO,
    seed: int = 0,
    profiler: Profiler | None = None,
) -> tuple[TrainResult, PipelinedTrainResult]:
    """Train one cell twice — serial then pipelined — under equal seeds.

    Both runs construct their own identically-seeded model and RNG
    stream, so sampled batches and losses must match bit-for-bit; the
    only difference is the clock.  Returns ``(serial, pipelined)``.
    """
    from repro.algorithms import make_algorithm

    if algorithm not in TRAINABLE_CONFIGS:
        raise ShapeError(
            f"no trainable pipeline config for {algorithm!r}; "
            f"available: {sorted(TRAINABLE_CONFIGS)}"
        )
    _, algo_kwargs, _, _ = TRAINABLE_CONFIGS[algorithm]
    algo = make_algorithm(algorithm, **algo_kwargs)
    example = dataset.train_ids[:batch_size]

    serial_trainer = Trainer(
        algo.build(dataset.graph, example),
        _build_model(algorithm, dataset, seed),
        dataset,
        device=device,
        train_device=train_device,
        batch_size=batch_size,
        seed=seed,
    )
    serial = serial_trainer.train(
        epochs, max_batches_per_epoch=max_batches
    )

    pipelined_trainer = PipelinedTrainer(
        algo.build(dataset.graph, example),
        _build_model(algorithm, dataset, seed),
        dataset,
        device=device,
        train_device=train_device,
        batch_size=batch_size,
        seed=seed,
        prefetch_depth=prefetch_depth,
        cache_ratio=cache_ratio,
    )
    pipelined = pipelined_trainer.train(
        epochs, max_batches_per_epoch=max_batches, profiler=profiler
    )
    return serial, pipelined
