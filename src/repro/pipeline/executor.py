"""The pipelined epoch executor and its serial-vs-pipelined harness.

:class:`PipelinedTrainer` schedules every training epoch across three
simulated device queues:

* ``sample``   — the sampling pipeline's kernels (on the sampling device);
* ``transfer`` — per-batch feature gathers, PCIe-bound for host-resident
  features, with a :class:`~repro.cache.FeatureCache` short-circuiting
  hot rows to device memory;
* ``compute``  — the model's forward/backward launches.

Dependencies mirror a real prefetching loop: batch ``i``'s transfer
waits on its sampling, its compute waits on its transfer, queues
serialize internally, and sampling runs at most ``prefetch_depth``
batches ahead of compute (the staging-buffer bound).  Because the
schedule only moves *accounting* onto queue timelines — the Python
execution order is the serial one — sampled matrices, losses, and
trained weights are bit-identical to :class:`~repro.learning.Trainer`;
only the simulated clock changes, from the sum of stage times to the
makespan of their overlap.
"""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np

from repro.algorithms.base import Pipeline
from repro.cache import (
    DEFAULT_CACHE_RATIO,
    DEFAULT_HOST_TIER_RATIO,
    CacheStats,
    FeatureCache,
    TieredFeatureStore,
    plan_gather,
    record_gather,
)
from repro.core import minibatches
from repro.datasets import Dataset
from repro.device import DeviceSpec, ExecutionContext, MemoryPool
from repro.errors import ShapeError
from repro.learning.models import SampledGNN
from repro.learning.trainer import Trainer, TrainResult
from repro.profile.spans import Profiler
from repro.tasks import Task

#: How many batches the sampler may run ahead of the trainer; 2 is the
#: classic double-buffering depth (one batch in flight per stage).
DEFAULT_PREFETCH_DEPTH = 2


@dataclasses.dataclass(frozen=True)
class QueueReport:
    """One queue's timeline summary for an epoch run."""

    queue: str
    device: str
    busy_seconds: float
    end_seconds: float
    launches: int

    @property
    def utilization(self) -> float:
        """Occupied fraction of the full makespan this queue ran under."""
        return self.busy_seconds / self.end_seconds if self.end_seconds else 0.0


@dataclasses.dataclass
class PipelinedTrainResult(TrainResult):
    """A :class:`TrainResult` whose clock is the queue-overlap makespan.

    ``total_seconds`` is the max over queue end times;
    ``sampling_seconds``/``training_seconds`` are the busy (occupied)
    seconds of the sampling context and training context respectively,
    so they can sum to more than ``total_seconds`` — that surplus *is*
    the overlap win.
    """

    prefetch_depth: int = DEFAULT_PREFETCH_DEPTH
    queue_reports: list[QueueReport] = dataclasses.field(default_factory=list)
    cache_stats: CacheStats | None = None

    @property
    def serialized_seconds(self) -> float:
        """What the same work would cost with no overlap at all."""
        return sum(r.busy_seconds for r in self.queue_reports)

    @property
    def overlap_reduction(self) -> float:
        """Fractional time saved vs running the queues back-to-back."""
        serial = self.serialized_seconds
        if serial <= 0.0:
            return 0.0
        return 1.0 - self.total_seconds / serial


class PipelinedTrainer(Trainer):
    """Mini-batch trainer that overlaps sampling, transfer, and compute.

    Accepts everything :class:`~repro.learning.Trainer` does, plus:

    prefetch_depth:
        Staging-buffer bound: sampling of batch ``i`` may not start
        before compute of batch ``i - prefetch_depth`` finished.  Must
        be at least 1; 2 (the default) gives classic double buffering.
    cache_ratio:
        Fraction of nodes whose feature rows are pinned on the training
        device (degree-ordered; see :class:`~repro.cache.FeatureCache`).
        ``0.0`` disables caching.  The pinned bytes are charged to the
        training context's memory pool, so an over-large ratio is
        evicted down (or refused) against that pool's capacity.
    feature_tiers:
        Serve feature rows through the multi-tier store
        (:class:`~repro.cache.TieredFeatureStore`) instead of the flat
        cache: the device tier's gathers stay on-device, the pinned-host
        band crosses PCIe as UVA traffic, and the remote tail runs as a
        ``fixed_seconds`` launch on its own ``remote`` queue, overlapped
        with the PCIe read.
    host_tier_ratio:
        Fraction of nodes in the pinned-host tier (tiered mode only).
    hbm_budget:
        Byte capacity of the training context's memory pool — the knob
        that caps the device tier below the working set.  ``None`` keeps
        the unbounded default.
    prefetch:
        When True (the default), batch ``i+1``'s feature fetch overlaps
        batch ``i``'s compute — the async-prefetch loader.  False models
        a synchronous loader: a batch's fetch may not start until the
        previous batch's compute finished, which serializes the miss
        traffic the tiered store's overlap would otherwise hide.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        model: SampledGNN,
        dataset: Dataset,
        *,
        device: DeviceSpec,
        train_device: DeviceSpec | None = None,
        batch_size: int = 1024,
        lr: float = 0.05,
        seed: int = 0,
        prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
        cache_ratio: float = DEFAULT_CACHE_RATIO,
        feature_tiers: bool = False,
        host_tier_ratio: float = DEFAULT_HOST_TIER_RATIO,
        hbm_budget: int | None = None,
        prefetch: bool = True,
        task: Task | None = None,
    ) -> None:
        if prefetch_depth < 1:
            raise ShapeError(
                f"prefetch depth must be at least 1, got {prefetch_depth}"
            )
        super().__init__(
            pipeline,
            model,
            dataset,
            device=device,
            train_device=train_device,
            batch_size=batch_size,
            lr=lr,
            seed=seed,
            task=task,
        )
        self.prefetch_depth = prefetch_depth
        self.cache_ratio = cache_ratio
        self.feature_tiers = feature_tiers
        self.host_tier_ratio = host_tier_ratio
        self.hbm_budget = hbm_budget
        self.prefetch = prefetch

    # ------------------------------------------------------------------
    def _fetch_batch(
        self,
        sample,
        train_ctx: ExecutionContext,
        cache,
        fetch_after: float,
    ) -> float:
        """Charge one batch's feature fetch; returns its completion time.

        Flat path: the classic single ``feature_gather`` on ``transfer``
        (misses as UVA ``graph_bytes``) — byte-identical to the
        pre-tier executor.  Tiered path: only the host band is UVA
        traffic, and the remote tail runs on its own ``remote`` queue so
        the batch's fetch completes at the *max* of the two wires.
        """
        if not isinstance(cache, TieredFeatureStore):
            with train_ctx.on_queue("transfer", not_before=fetch_after):
                self._gather_features(sample, train_ctx, cache)
            return train_ctx.queue("transfer").ready
        row_bytes = self.dataset.features.shape[1] * 4
        # Remote rows are DMA'd straight into the staging buffer by the
        # remote wire (charged below on its own queue), so only the
        # device + host bands go through the local gather; with no
        # remote tail (host_ratio=1.0) this record is byte-identical to
        # the flat path's.
        plan = plan_gather(sample.all_nodes, cache)
        with train_ctx.on_queue("transfer", not_before=fetch_after):
            record_gather(train_ctx, plan, row_bytes)
        transferred_at = train_ctx.queue("transfer").ready
        if plan.remote_rows > 0:
            with train_ctx.on_queue("remote", not_before=fetch_after):
                remote = train_ctx.record(
                    f"remote_tier_fetch[{cache.remote_tier.name}]",
                    tasks=plan.remote_rows,
                    fixed_seconds=cache.remote_tier.fetch_time(
                        plan.remote_rows * row_bytes
                    ),
                )
            transferred_at = max(transferred_at, remote.sim_end)
        return transferred_at

    # ------------------------------------------------------------------
    def train(
        self,
        epochs: int,
        *,
        max_batches_per_epoch: int | None = None,
        profiler: Profiler | None = None,
    ) -> PipelinedTrainResult:
        sample_ctx = ExecutionContext(
            self.device, graph_on_device=self.dataset.graph_on_device
        )
        # Tiered mode prices the host-tier band as UVA traffic, so the
        # training context's "graph" (= the feature table) must be
        # host-resident regardless of where the topology lives; compute
        # launches declare no graph_bytes, so their pricing is unchanged.
        train_ctx = ExecutionContext(
            self.train_device,
            graph_on_device=(
                False if self.feature_tiers else self.dataset.graph_on_device
            ),
            memory=(
                MemoryPool(self.hbm_budget)
                if self.hbm_budget is not None
                else None
            ),
        )
        if profiler is not None:
            profiler.attach(sample_ctx)
            train_ctx.profiler = profiler
        cache: FeatureCache | TieredFeatureStore | None = None
        if self.feature_tiers and self.cache_ratio > 0.0:
            cache = TieredFeatureStore.from_dataset(
                self.dataset,
                pool=train_ctx.memory,
                device_ratio=self.cache_ratio,
                host_ratio=self.host_tier_ratio,
            )
        elif self.cache_ratio > 0.0:
            cache = FeatureCache.from_dataset(
                self.dataset, ratio=self.cache_ratio, pool=train_ctx.memory
            )

        def span(name: str, category: str, **attrs: object):
            if profiler is None:
                return contextlib.nullcontext()
            return profiler.span(name, category, **attrs)

        acc_history: list[float] = []
        last_loss = float("nan")
        units = self.task.train_units(self.dataset)
        # Completion time of each batch's compute, indexed per epoch; the
        # prefetch window looks back ``prefetch_depth`` entries.
        for epoch in range(epochs):
            batches = minibatches(
                units, self.batch_size, shuffle=True, rng=self.rng
            )
            if max_batches_per_epoch is not None:
                batches = batches[:max_batches_per_epoch]
            epoch_acc: list[float] = []
            compute_done: list[float] = []
            with span("epoch", "epoch", index=epoch, pipelined=True):
                for i, batch in enumerate(batches):
                    # Staging-buffer bound: the sampler may run at most
                    # prefetch_depth batches ahead of the trainer.
                    slot_free = (
                        compute_done[i - self.prefetch_depth]
                        if i >= self.prefetch_depth
                        else 0.0
                    )
                    with span(f"batch[{i}]", "batch", size=len(batch)):
                        task_batch = self.task.materialize(batch, self.rng)
                        with sample_ctx.on_queue("sample", not_before=slot_free):
                            sample = self.pipeline.sample_batch(
                                task_batch.nodes, ctx=sample_ctx, rng=self.rng
                            )
                        sampled_at = sample_ctx.queue("sample").ready
                        # A synchronous loader cannot start a batch's
                        # fetch until the previous compute finished; the
                        # async-prefetch default starts it the moment
                        # sampling lands.
                        fetch_after = sampled_at
                        if not self.prefetch and compute_done:
                            fetch_after = max(sampled_at, compute_done[-1])
                        transferred_at = self._fetch_batch(
                            sample, train_ctx, cache, fetch_after
                        )
                        with train_ctx.on_queue(
                            "compute", not_before=transferred_at
                        ):
                            loss, acc = self._compute_batch(
                                sample, train_ctx, task_batch
                            )
                        compute_done.append(train_ctx.queue("compute").ready)
                    last_loss = loss
                    epoch_acc.append(acc)
                if cache is not None:
                    stats = cache.epoch_stats()
                    attrs: dict[str, object] = dict(
                        hits=stats.hits,
                        misses=stats.misses,
                        hit_rate=round(stats.hit_rate, 4),
                        cached_rows=stats.cached_rows,
                    )
                    if self.feature_tiers:
                        attrs.update(
                            host_hits=stats.host_hits,
                            remote_hits=stats.remote_hits,
                            host_rows=stats.host_rows,
                        )
                    with span(f"cache[{epoch}]", "cache", **attrs):
                        pass
            acc_history.append(float(np.mean(epoch_acc)) if epoch_acc else 0.0)

        reports = [
            QueueReport(
                queue=q.name,
                device=ctx.device.name,
                busy_seconds=q.busy_seconds,
                end_seconds=q.ready,
                launches=q.launches,
            )
            for ctx in (sample_ctx, train_ctx)
            for q in ctx.queue_stats().values()
        ]
        return PipelinedTrainResult(
            epochs=epochs,
            final_accuracy=acc_history[-1] if acc_history else 0.0,
            final_loss=last_loss,
            total_seconds=max(sample_ctx.elapsed, train_ctx.elapsed),
            sampling_seconds=sample_ctx.busy_seconds,
            training_seconds=train_ctx.busy_seconds,
            accuracy_history=acc_history,
            prefetch_depth=self.prefetch_depth,
            queue_reports=reports,
            cache_stats=cache.epoch_stats() if cache is not None else None,
        )


# ----------------------------------------------------------------------
# Serial-vs-pipelined comparison cell (CLI + benchmarks)
# ----------------------------------------------------------------------

#: Trainable algorithm configurations the comparison cell understands
#: (the two Table-8 workloads).
TRAINABLE_CONFIGS: dict[str, tuple[str, dict, dict, int]] = {
    "graphsage": ("GraphSAGEModel", dict(fanouts=(5, 10)), {}, 2),
    "ladies": ("LadiesGCN", dict(layer_width=256, num_layers=2), {}, 2),
}


def _build_model(algorithm: str, dataset: Dataset, seed: int) -> SampledGNN:
    from repro.learning import GraphSAGEModel, LadiesGCN

    model_name, _, _, num_layers = TRAINABLE_CONFIGS[algorithm]
    model_cls = {"GraphSAGEModel": GraphSAGEModel, "LadiesGCN": LadiesGCN}[
        model_name
    ]
    return model_cls(
        dataset.features.shape[1],
        32,
        dataset.num_classes,
        num_layers=num_layers,
        rng=np.random.default_rng(seed),
    )


def run_pipeline_cell(
    algorithm: str,
    dataset: Dataset,
    *,
    device: DeviceSpec,
    train_device: DeviceSpec | None = None,
    epochs: int = 1,
    batch_size: int = 256,
    max_batches: int | None = 8,
    prefetch_depth: int = DEFAULT_PREFETCH_DEPTH,
    cache_ratio: float = DEFAULT_CACHE_RATIO,
    seed: int = 0,
    profiler: Profiler | None = None,
    feature_tiers: bool = False,
    host_tier_ratio: float = DEFAULT_HOST_TIER_RATIO,
    hbm_budget: int | None = None,
    prefetch: bool = True,
) -> tuple[TrainResult, PipelinedTrainResult]:
    """Train one cell twice — serial then pipelined — under equal seeds.

    Both runs construct their own identically-seeded model and RNG
    stream, so sampled batches and losses must match bit-for-bit; the
    only difference is the clock.  Returns ``(serial, pipelined)``.
    """
    from repro.algorithms import make_algorithm

    if algorithm not in TRAINABLE_CONFIGS:
        raise ShapeError(
            f"no trainable pipeline config for {algorithm!r}; "
            f"available: {sorted(TRAINABLE_CONFIGS)}"
        )
    _, algo_kwargs, _, _ = TRAINABLE_CONFIGS[algorithm]
    algo = make_algorithm(algorithm, **algo_kwargs)
    example = dataset.train_ids[:batch_size]

    serial_trainer = Trainer(
        algo.build(dataset.graph, example),
        _build_model(algorithm, dataset, seed),
        dataset,
        device=device,
        train_device=train_device,
        batch_size=batch_size,
        seed=seed,
    )
    serial = serial_trainer.train(
        epochs, max_batches_per_epoch=max_batches
    )

    pipelined_trainer = PipelinedTrainer(
        algo.build(dataset.graph, example),
        _build_model(algorithm, dataset, seed),
        dataset,
        device=device,
        train_device=train_device,
        batch_size=batch_size,
        seed=seed,
        prefetch_depth=prefetch_depth,
        cache_ratio=cache_ratio,
        feature_tiers=feature_tiers,
        host_tier_ratio=host_tier_ratio,
        hbm_budget=hbm_budget,
        prefetch=prefetch,
    )
    pipelined = pipelined_trainer.train(
        epochs, max_batches_per_epoch=max_batches, profiler=profiler
    )
    return serial, pipelined
