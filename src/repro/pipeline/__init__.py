"""Pipelined epoch execution: overlap sampling, transfer, and compute.

A serial training epoch pays ``sample + gather + train`` per batch, one
after another.  Real GNN systems (FastGL; see PAPERS.md) overlap the
three on separate CUDA streams, with the sampler running a bounded
number of batches ahead of the trainer.  This package reproduces that
schedule on the simulator's multi-queue timelines
(:meth:`repro.device.ExecutionContext.on_queue`): the epoch's simulated
time becomes the max over the queue timelines instead of their sum,
while the Python-level execution order — and therefore every sampled
edge and every trained weight — stays bit-identical to the serial path.
"""

from repro.pipeline.executor import (
    DEFAULT_PREFETCH_DEPTH,
    PipelinedTrainer,
    PipelinedTrainResult,
    QueueReport,
    run_pipeline_cell,
)

__all__ = [
    "DEFAULT_PREFETCH_DEPTH",
    "PipelinedTrainer",
    "PipelinedTrainResult",
    "QueueReport",
    "run_pipeline_cell",
]
