"""GPU feature cache: hot-node feature rows served from device memory.

FastGL-style observation (see PAPERS.md): mini-batch GNN training moves
far more bytes gathering features than sampling structure, and feature
accesses are as skewed as the graph's degree distribution — caching the
hottest nodes' rows on device removes most of the PCIe traffic.  This
package provides the degree-ordered static cache the pipelined epoch
executor (:mod:`repro.pipeline`) charges feature gathers through, plus
the multi-tier store (:mod:`repro.cache.tiered`) that extends it past
HBM scale: device HBM -> sibling HBM over the interconnect -> pinned
host DRAM -> a remote/disk tier.
"""

from repro.cache.feature_cache import (
    DEFAULT_CACHE_RATIO,
    CacheStats,
    FeatureCache,
    admit_rows,
)
from repro.cache.gather import GatherPlan, plan_gather, record_gather
from repro.cache.ranking import degree_order, graph_degrees
from repro.cache.tiered import (
    DEFAULT_HOST_TIER_RATIO,
    REMOTE_TIER,
    GatherSplit,
    TieredFeatureStore,
    TierSpec,
)

__all__ = [
    "DEFAULT_CACHE_RATIO",
    "DEFAULT_HOST_TIER_RATIO",
    "REMOTE_TIER",
    "CacheStats",
    "FeatureCache",
    "GatherPlan",
    "GatherSplit",
    "plan_gather",
    "record_gather",
    "TierSpec",
    "TieredFeatureStore",
    "admit_rows",
    "degree_order",
    "graph_degrees",
]
