"""GPU feature cache: hot-node feature rows served from device memory.

FastGL-style observation (see PAPERS.md): mini-batch GNN training moves
far more bytes gathering features than sampling structure, and feature
accesses are as skewed as the graph's degree distribution — caching the
hottest nodes' rows on device removes most of the PCIe traffic.  This
package provides the degree-ordered static cache the pipelined epoch
executor (:mod:`repro.pipeline`) charges feature gathers through.
"""

from repro.cache.feature_cache import (
    DEFAULT_CACHE_RATIO,
    CacheStats,
    FeatureCache,
)

__all__ = ["DEFAULT_CACHE_RATIO", "CacheStats", "FeatureCache"]
