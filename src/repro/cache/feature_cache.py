"""Degree-ordered static feature cache with budgeted device residency.

The cache policy is the one the GNN-systems literature converged on for
skewed graphs (FastGL, NextDoor-adjacent systems): rank nodes by degree
once, pin the feature rows of the top fraction in device memory, and
serve gathers for those rows at device bandwidth instead of over PCIe.
The pinned bytes are charged against the simulated device
:class:`~repro.device.MemoryPool`, so the cache competes with sampling
buffers for the same budget and degrades cleanly when it loses:

* if the requested ratio does not fit, the plan is *evicted* down
  (coldest planned rows dropped first — they are the tail of the degree
  order) until it fits;
* if not even one allocation granule fits, the cache *refuses* — zero
  rows cached, pool left exactly as it was, every gather a miss.

The cache is static per training run (the paper-adjacent systems
pre-compute it from degrees; no per-batch churn), but hit/miss
accounting is kept per epoch so epoch reports can show the hit rate the
executor actually saw.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.device.memory import Allocation, MemoryPool
from repro.errors import MemoryBudgetError, ShapeError

#: Fraction of nodes cached when the caller does not choose one.  At the
#: catalog's skew, 10% of nodes by degree covers well over half of all
#: gathered rows.
DEFAULT_CACHE_RATIO = 0.10


@dataclasses.dataclass
class CacheStats:
    """Per-epoch hit/miss accounting snapshot."""

    cached_rows: int
    requested_rows: int
    cached_bytes: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def evicted_rows(self) -> int:
        """Rows the requested ratio wanted but the budget refused."""
        return self.requested_rows - self.cached_rows

    @classmethod
    def merged(cls, stats: "list[CacheStats | None]") -> "CacheStats | None":
        """Sum per-replica snapshots into one cluster-level snapshot.

        Each serving replica owns its own cache; the cluster report's
        hit rate is the traffic-weighted aggregate, which summing hits
        and misses computes exactly.  ``None`` entries (cache-disabled
        replicas) are skipped; all-``None`` input merges to ``None``.
        """
        present = [s for s in stats if s is not None]
        if not present:
            return None
        return cls(
            cached_rows=sum(s.cached_rows for s in present),
            requested_rows=sum(s.requested_rows for s in present),
            cached_bytes=sum(s.cached_bytes for s in present),
            hits=sum(s.hits for s in present),
            misses=sum(s.misses for s in present),
        )


class FeatureCache:
    """Static device-resident cache over a feature matrix's hot rows.

    Parameters
    ----------
    features:
        The ``(N, F)`` feature matrix being cached (host copy; the cache
        only models device residency, it never duplicates the array).
    scores:
        Per-node hotness, length ``N`` — degrees in the standard policy.
        Ties break toward lower node ids for determinism.
    ratio:
        Fraction of nodes to pin, in ``[0, 1]``.
    pool:
        Device memory pool the pinned bytes are charged to.
    """

    def __init__(
        self,
        features: np.ndarray,
        scores: np.ndarray,
        *,
        ratio: float = DEFAULT_CACHE_RATIO,
        pool: MemoryPool,
        tag: str = "feature_cache",
    ) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ShapeError(f"cache ratio must be in [0, 1], got {ratio}")
        scores = np.asarray(scores)
        if scores.shape != (features.shape[0],):
            raise ShapeError(
                f"scores shape {scores.shape} != nodes ({features.shape[0]},)"
            )
        self.ratio = ratio
        self.pool = pool
        self.row_bytes = int(features.shape[1]) * features.dtype.itemsize
        self.requested_rows = int(round(ratio * features.shape[0]))
        order = np.argsort(-scores.astype(np.float64), kind="stable")
        rows, allocation = self._admit(order, self.requested_rows, tag)
        self.allocation: Allocation | None = allocation
        self.cached_ids = np.sort(order[:rows])
        self._is_cached = np.zeros(features.shape[0], dtype=bool)
        self._is_cached[self.cached_ids] = True
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    def _admit(
        self, order: np.ndarray, want: int, tag: str
    ) -> tuple[int, Allocation | None]:
        """Pin the largest degree-ordered prefix of ``want`` that fits.

        Eviction is from the cold tail (halving steps, the same probe
        shape as ``choose_superbatch_size``); a pool that cannot take a
        single granule leaves the cache empty and the pool untouched.
        """
        rows = min(want, len(order))
        while rows > 0:
            try:
                return rows, self.pool.alloc(rows * self.row_bytes, tag=tag)
            except MemoryBudgetError:
                rows //= 2
        return 0, None

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset,
        *,
        ratio: float = DEFAULT_CACHE_RATIO,
        pool: MemoryPool,
    ) -> "FeatureCache":
        """The standard policy: rank by in-degree of the dataset graph."""
        csc = dataset.graph.get("csc")
        degrees = np.diff(csc.indptr)
        return cls(dataset.features, degrees, ratio=ratio, pool=pool)

    # ------------------------------------------------------------------
    @property
    def cached_rows(self) -> int:
        return len(self.cached_ids)

    @property
    def cached_bytes(self) -> int:
        return self.allocation.nbytes if self.allocation is not None else 0

    def split(self, nodes: np.ndarray) -> tuple[int, int]:
        """``(hits, misses)`` for one gather, without recording them.

        Duplicate node ids count once per occurrence — a gather that
        reads the same row twice moves its bytes twice.  An empty node
        array is a legal no-op gather: ``(0, 0)`` (and never indexes the
        residency mask, so the float64 dtype NumPy gives ``[]`` by
        default cannot poison the fancy index).
        """
        nodes = np.asarray(nodes)
        if nodes.size == 0:
            return 0, 0
        hits = int(np.count_nonzero(self._is_cached[nodes]))
        return hits, int(nodes.size) - hits

    def record_gather(self, nodes: np.ndarray) -> tuple[int, int]:
        """Split one gather into hits/misses and add to the epoch tally."""
        hits, misses = self.split(nodes)
        self._hits += hits
        self._misses += misses
        return hits, misses

    def epoch_stats(self) -> CacheStats:
        return CacheStats(
            cached_rows=self.cached_rows,
            requested_rows=self.requested_rows,
            cached_bytes=self.cached_bytes,
            hits=self._hits,
            misses=self._misses,
        )

    def reset_epoch(self) -> None:
        """Clear the hit/miss tally (cache contents are static)."""
        self._hits = 0
        self._misses = 0

    def release(self) -> None:
        """Return the pinned bytes to the pool (idempotent)."""
        if self.allocation is not None:
            self.pool.free(self.allocation)
            self.allocation = None
            self.cached_ids = self.cached_ids[:0]
            self._is_cached[:] = False
