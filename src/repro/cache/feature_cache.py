"""Degree-ordered static feature cache with budgeted device residency.

The cache policy is the one the GNN-systems literature converged on for
skewed graphs (FastGL, NextDoor-adjacent systems): rank nodes by degree
once, pin the feature rows of the top fraction in device memory, and
serve gathers for those rows at device bandwidth instead of over PCIe.
The pinned bytes are charged against the simulated device
:class:`~repro.device.MemoryPool`, so the cache competes with sampling
buffers for the same budget and degrades cleanly when it loses:

* if the requested ratio does not fit, the plan is *evicted* down
  (coldest planned rows dropped first — they are the tail of the degree
  order) until it fits;
* if not even one allocation granule fits, the cache *refuses* — zero
  rows cached, pool left exactly as it was, every gather a miss.

The cache is static per training run (the paper-adjacent systems
pre-compute it from degrees; no per-batch churn), but hit/miss
accounting is kept per epoch so epoch reports can show the hit rate the
executor actually saw.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cache.ranking import degree_order, graph_degrees
from repro.device.memory import Allocation, MemoryPool
from repro.errors import MemoryBudgetError, ShapeError

#: Fraction of nodes cached when the caller does not choose one.  At the
#: catalog's skew, 10% of nodes by degree covers well over half of all
#: gathered rows.
DEFAULT_CACHE_RATIO = 0.10


def admit_rows(
    pool: MemoryPool, row_bytes: int, want: int, tag: str
) -> tuple[int, Allocation | None]:
    """Pin the largest row count ``<= want`` whose bytes fit in ``pool``.

    The common case — the full plan fits — is a single allocation.  Under
    a tight budget the boundary is found by binary search between the
    last failing and first fitting size, so the result is the *largest*
    fitting count, not an up-to-2x-smaller halving artifact.  Probe
    allocations are freed (and the probe's cached block trimmed) before
    the next probe, so a failure leaves the pool exactly as it was and
    success leaves exactly one live allocation.
    """
    rows = want
    if rows <= 0:
        return 0, None
    try:
        return rows, pool.alloc(rows * row_bytes, tag=tag)
    except MemoryBudgetError:
        pass
    # Invariant: lo fits (zero rows fit vacuously), hi does not.
    lo, hi = 0, rows
    while hi - lo > 1:
        mid = (lo + hi) // 2
        try:
            probe = pool.alloc(mid * row_bytes, tag=tag)
        except MemoryBudgetError:
            hi = mid
            continue
        pool.free(probe)
        pool.trim()
        lo = mid
    if lo == 0:
        return 0, None
    return lo, pool.alloc(lo * row_bytes, tag=tag)


@dataclasses.dataclass
class CacheStats:
    """Per-epoch hit/miss accounting snapshot.

    The tier fields default to zero so a flat single-tier
    :class:`FeatureCache` produces exactly the pre-tier snapshot; a
    :class:`~repro.cache.tiered.TieredFeatureStore` breaks its misses
    down by where the row actually lived (``misses`` stays the total of
    all non-device-resident lookups, so ``hit_rate`` keeps meaning
    "served at device bandwidth" across both store kinds).
    """

    cached_rows: int
    requested_rows: int
    cached_bytes: int
    hits: int
    misses: int
    #: Rows served from a sibling replica's HBM over the interconnect.
    p2p_hits: int = 0
    #: Rows served from the pinned-host tier (PCIe zero-copy reads).
    host_hits: int = 0
    #: Rows served from the remote/disk tier.
    remote_hits: int = 0
    #: Size of the pinned-host tier, in rows (0 for flat caches).
    host_rows: int = 0
    #: Rows evicted through :meth:`FeatureCache.invalidate` because a
    #: graph delta changed their degree band.  Cumulative over the
    #: cache's lifetime (residency-level, like ``cached_rows``), so it
    #: survives :meth:`FeatureCache.reset_epoch`.
    invalidated_rows: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def tier_rate(self, tier: str) -> float:
        """Fraction of lookups answered by ``tier``.

        ``tier`` is one of ``device``/``p2p``/``host``/``remote``; the
        four rates sum to 1 for a tiered store (a flat cache has
        everything outside ``device`` folded into ``host``-free
        ``misses``, so only ``device`` is meaningful there).
        """
        total = self.lookups
        if not total:
            return 0.0
        counts = {
            "device": self.hits,
            "p2p": self.p2p_hits,
            "host": self.host_hits,
            "remote": self.remote_hits,
        }
        return counts[tier] / total

    @property
    def evicted_rows(self) -> int:
        """Rows the requested ratio wanted but the budget refused.

        A released cache reports zero here: :meth:`FeatureCache.release`
        clears ``requested_rows`` along with the pinned rows, so a
        voluntary teardown is never mistaken for budget pressure.
        """
        return self.requested_rows - self.cached_rows

    @classmethod
    def merged(cls, stats: "list[CacheStats | None]") -> "CacheStats | None":
        """Sum per-replica snapshots into one cluster-level snapshot.

        Each serving replica owns its own cache; the cluster report's
        hit rate is the traffic-weighted aggregate, which summing hits
        and misses computes exactly.  ``None`` entries (cache-disabled
        replicas) are skipped; all-``None`` input merges to ``None``.
        """
        present = [s for s in stats if s is not None]
        if not present:
            return None
        return cls(
            cached_rows=sum(s.cached_rows for s in present),
            requested_rows=sum(s.requested_rows for s in present),
            cached_bytes=sum(s.cached_bytes for s in present),
            hits=sum(s.hits for s in present),
            misses=sum(s.misses for s in present),
            p2p_hits=sum(s.p2p_hits for s in present),
            host_hits=sum(s.host_hits for s in present),
            remote_hits=sum(s.remote_hits for s in present),
            host_rows=sum(s.host_rows for s in present),
            invalidated_rows=sum(s.invalidated_rows for s in present),
        )


class FeatureCache:
    """Static device-resident cache over a feature matrix's hot rows.

    Parameters
    ----------
    features:
        The ``(N, F)`` feature matrix being cached (host copy; the cache
        only models device residency, it never duplicates the array).
    scores:
        Per-node hotness, length ``N`` — degrees in the standard policy.
        Ties break toward lower node ids for determinism.
    ratio:
        Fraction of nodes to pin, in ``[0, 1]``.
    pool:
        Device memory pool the pinned bytes are charged to.
    """

    def __init__(
        self,
        features: np.ndarray,
        scores: np.ndarray,
        *,
        ratio: float = DEFAULT_CACHE_RATIO,
        pool: MemoryPool,
        owned_mask: np.ndarray | None = None,
        tag: str = "feature_cache",
    ) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ShapeError(f"cache ratio must be in [0, 1], got {ratio}")
        scores = np.asarray(scores)
        if scores.shape != (features.shape[0],):
            raise ShapeError(
                f"scores shape {scores.shape} != nodes ({features.shape[0]},)"
            )
        self.ratio = ratio
        self.pool = pool
        self.row_bytes = int(features.shape[1]) * features.dtype.itemsize
        self.requested_rows = int(round(ratio * features.shape[0]))
        self._owned_mask = (
            None if owned_mask is None else np.asarray(owned_mask, dtype=bool)
        )
        order = degree_order(scores, owned_mask=self._owned_mask)
        rows, allocation = self._admit(order, self.requested_rows, tag)
        self.allocation: Allocation | None = allocation
        #: Rows the admission actually pinned — the refill ceiling for
        #: :meth:`rerank` (the allocation's byte size over-counts by up
        #: to one pool granule of rounding).
        self._admitted_rows = rows
        self.cached_ids = np.sort(order[:rows])
        self._is_cached = np.zeros(features.shape[0], dtype=bool)
        self._is_cached[self.cached_ids] = True
        self._hits = 0
        self._misses = 0
        self._invalidated = 0

    # ------------------------------------------------------------------
    def _admit(
        self, order: np.ndarray, want: int, tag: str
    ) -> tuple[int, Allocation | None]:
        """Pin the largest degree-ordered prefix of ``want`` that fits.

        Eviction is from the cold tail, boundary found by binary search
        (:func:`admit_rows`); a pool that cannot take a single granule
        leaves the cache empty and the pool untouched.
        """
        return admit_rows(self.pool, self.row_bytes, min(want, len(order)), tag)

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset,
        *,
        ratio: float = DEFAULT_CACHE_RATIO,
        pool: MemoryPool,
        owned_mask: np.ndarray | None = None,
    ) -> "FeatureCache":
        """The standard policy: rank by in-degree of the dataset graph.

        ``owned_mask`` is the sharded-replica variant: when a replica
        owns a :class:`~repro.partition.ShardView` and shard-affinity
        routing sends it mostly owned-shard traffic, ranking by *global*
        degree pins hot rows the replica rarely serves.  With a mask,
        owned nodes rank by their degree and every non-owned node is
        scored below the coldest owned node, so the budget goes to rows
        this replica will actually be asked for (non-owned rows are
        still admissible last, if the plan is larger than the shard).
        Without a mask (shardless replicas, the training pipeline) the
        global ranking is the explicit fallback.
        """
        degrees = graph_degrees(dataset.graph)
        return cls(
            dataset.features,
            degrees,
            ratio=ratio,
            pool=pool,
            owned_mask=owned_mask,
        )

    # ------------------------------------------------------------------
    @property
    def cached_rows(self) -> int:
        return len(self.cached_ids)

    @property
    def cached_bytes(self) -> int:
        return self.allocation.nbytes if self.allocation is not None else 0

    def split(self, nodes: np.ndarray) -> tuple[int, int]:
        """``(hits, misses)`` for one gather, without recording them.

        Duplicate node ids count once per occurrence — a gather that
        reads the same row twice moves its bytes twice.  An empty node
        array is a legal no-op gather: ``(0, 0)`` (and never indexes the
        residency mask, so the float64 dtype NumPy gives ``[]`` by
        default cannot poison the fancy index).
        """
        nodes = np.asarray(nodes)
        if nodes.size == 0:
            return 0, 0
        hits = int(np.count_nonzero(self._is_cached[nodes]))
        return hits, int(nodes.size) - hits

    def record_gather(self, nodes: np.ndarray) -> tuple[int, int]:
        """Split one gather into hits/misses and add to the epoch tally."""
        hits, misses = self.split(nodes)
        self._hits += hits
        self._misses += misses
        return hits, misses

    def invalidate(self, rows: np.ndarray) -> int:
        """Evict the cached subset of ``rows``; returns the count.

        The delta path: when streamed edges change a node's degree, its
        seed-time band is wrong, so the row is dropped from residency
        (subsequent gathers miss) until :meth:`rerank` refills the
        slots.  The device allocation is *not* shrunk — the slots are
        tombstoned, exactly like a real pinned-buffer cache — so
        invalidation never perturbs the :class:`~repro.device.MemoryPool`
        ledger mid-session.  Evictions accumulate in
        :attr:`CacheStats.invalidated_rows`.
        """
        rows = np.asarray(rows)
        if rows.size == 0:
            return 0
        rows = rows.astype(np.int64, copy=False)
        victims = np.unique(rows[self._is_cached[rows]])
        if victims.size == 0:
            return 0
        self._is_cached[victims] = False
        self.cached_ids = self.cached_ids[self._is_cached[self.cached_ids]]
        self._invalidated += int(victims.size)
        return int(victims.size)

    def rerank(self, scores: np.ndarray) -> int:
        """Re-rank residency against fresh ``scores`` (live degrees).

        Refills the pinned slots — including any tombstoned by
        :meth:`invalidate` — with the hottest rows under the new
        ranking, up to the capacity of the existing allocation (no pool
        traffic; the budget decision from admission time stands).  The
        construction-time ``owned_mask`` keeps applying, so sharded
        replicas keep preferring owned rows.  Returns the number of
        resident rows after the refill.
        """
        scores = np.asarray(scores)
        if scores.shape != self._is_cached.shape:
            raise ShapeError(
                f"scores shape {scores.shape} != nodes "
                f"{self._is_cached.shape}"
            )
        capacity = self._admitted_rows if self.allocation is not None else 0
        order = degree_order(scores, owned_mask=self._owned_mask)
        self.cached_ids = np.sort(order[:capacity])
        self._is_cached[:] = False
        self._is_cached[self.cached_ids] = True
        return int(self.cached_ids.size)

    def epoch_stats(self) -> CacheStats:
        return CacheStats(
            cached_rows=self.cached_rows,
            requested_rows=self.requested_rows,
            cached_bytes=self.cached_bytes,
            hits=self._hits,
            misses=self._misses,
            invalidated_rows=self._invalidated,
        )

    def reset_epoch(self) -> None:
        """Clear the hit/miss tally (cache contents are static)."""
        self._hits = 0
        self._misses = 0

    def release(self) -> None:
        """Return the pinned bytes to the pool (idempotent).

        Also clears ``requested_rows``: a released cache wants nothing,
        so :attr:`CacheStats.evicted_rows` reads 0 afterwards instead of
        reporting the whole plan as if the budget had refused it.
        """
        if self.allocation is not None:
            self.pool.free(self.allocation)
            self.allocation = None
            self.cached_ids = self.cached_ids[:0]
            self._is_cached[:] = False
            self.requested_rows = 0
