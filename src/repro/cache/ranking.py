"""Shared degree-order ranking for feature-residency policies.

Both :class:`~repro.cache.FeatureCache` and
:class:`~repro.cache.tiered.TieredFeatureStore` pin rows along the same
hotness order: score nodes (by in-degree, in the standard policy),
optionally demote rows outside the replica's owned shard below every
owned row, and stable-argsort descending so ties break toward lower node
ids.  This module is that ranking, extracted so

* both cache kinds provably rank identically (the p2p stripe and the
  shard-affinity scoring depend on it), and
* the ranking accepts a *refreshable* degree array: after graph
  mutation a :class:`~repro.dynamic.DeltaGraph` hands its live degrees
  to :meth:`FeatureCache.rerank` and admission re-ranks against current
  hotness instead of the seed-time snapshot.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["degree_order", "graph_degrees"]


def degree_order(
    scores: np.ndarray, *, owned_mask: np.ndarray | None = None
) -> np.ndarray:
    """Node ids sorted hottest-first, ties toward lower ids.

    ``owned_mask`` implements the sharded-replica policy: owned nodes
    keep their score, every non-owned node is scored below the coldest
    owned node (-1 against non-negative degrees), so the budget goes to
    rows the replica will actually be asked for while non-owned rows
    stay admissible last.  The input array is never mutated.
    """
    scores = np.asarray(scores).astype(np.float64)
    if owned_mask is not None:
        owned_mask = np.asarray(owned_mask, dtype=bool)
        if owned_mask.shape != scores.shape:
            raise ShapeError(
                f"owned mask shape {owned_mask.shape} != scores "
                f"shape {scores.shape}"
            )
        scores = scores.copy()
        scores[~owned_mask] = -1.0
    return np.argsort(-scores, kind="stable")


def graph_degrees(graph) -> np.ndarray:
    """In-degree per node of a graph :class:`~repro.core.matrix.Matrix`.

    The standard hotness score: CSC column degrees, the same array the
    workload generators use, so cache residency and request skew agree
    on which nodes are hot.
    """
    return np.diff(graph.get("csc").indptr)
