"""Multi-tier feature store: device HBM -> pinned host -> remote/disk.

The flat :class:`~repro.cache.FeatureCache` models exactly two prices
per gathered row: device bandwidth (hit) or UVA-over-PCIe (miss).  Past
HBM scale that is too coarse — the DGL ``unified_tensor`` /
``multi_gpu_datastore`` designs this module mirrors distinguish *where*
a missed row actually lives:

* **device** — rows pinned in this replica's HBM, charged to its
  :class:`~repro.device.MemoryPool` exactly like the flat cache (the
  admission is the same binary-search largest-fitting-prefix,
  :func:`~repro.cache.feature_cache.admit_rows`);
* **p2p** — rows pinned in a *sibling* replica's HBM, fetched over the
  cluster :class:`~repro.device.LinkSpec` when
  :func:`~repro.device.p2p_cheaper_than_host` says the link beats host
  DRAM (NVLink yes, PCIe no).  With p2p on, the fleet's HBM is pooled:
  the top ``num_replicas * plan`` rows are round-robin-striped across
  replicas, so k replicas pin k distinct row sets instead of k copies
  of the same hot band — the aggregate device tier is k times larger;
* **pinned host** — the next-hottest band, resident in pinned host
  DRAM and read zero-copy over PCIe.  Priced through the *same* UVA
  mechanism as the flat cache's misses (the executor charges these
  rows as ``graph_bytes``), so flat-vs-tiered comparisons differ in
  structure, never in the per-byte host price;
* **remote** — the cold tail, behind a :class:`TierSpec` with its own
  latency + bandwidth (a disaggregated store / NVMe), charged as a
  ``fixed_seconds`` launch on its own queue so it overlaps the PCIe
  read instead of serializing behind it.

The store only *classifies and counts*; charging stays in the executors
(:mod:`repro.pipeline` and :mod:`repro.serve.replica`), which own the
queue names — the same split of concerns the flat cache uses.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cache.feature_cache import (
    DEFAULT_CACHE_RATIO,
    CacheStats,
    admit_rows,
)
from repro.cache.ranking import degree_order, graph_degrees
from repro.device.interconnect import LinkSpec, p2p_cheaper_than_host
from repro.device.memory import Allocation, MemoryPool
from repro.errors import ShapeError

#: Tier codes in the per-node classification array.
TIER_DEVICE, TIER_P2P, TIER_HOST, TIER_REMOTE = range(4)

#: Fraction of nodes resident in the pinned-host tier by default: the
#: whole non-device remainder, which makes the default tiered store
#: charge-for-charge identical to the flat cache (no remote tail).
DEFAULT_HOST_TIER_RATIO = 1.0


@dataclasses.dataclass(frozen=True)
class TierSpec:
    """Analytical price of one non-device storage tier.

    Same shape as :class:`~repro.device.LinkSpec` — a fixed per-fetch
    latency plus a bandwidth term — because a tier fetch *is* a bulk
    transfer over some wire (PCIe DMA, NVMe queue pair, network).
    """

    name: str
    #: Sustained read bandwidth in bytes/second.
    bandwidth: float
    #: Fixed per-fetch setup cost in seconds.
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0.0:
            raise ShapeError(
                f"{self.name}: tier bandwidth must be positive, "
                f"got {self.bandwidth}"
            )
        if self.latency < 0.0:
            raise ShapeError(
                f"{self.name}: tier latency must be non-negative, "
                f"got {self.latency}"
            )

    def fetch_time(self, nbytes: float) -> float:
        """Simulated seconds to read ``nbytes`` from this tier."""
        if nbytes <= 0.0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


#: Remote/disk tier default: a disaggregated feature service or local
#: NVMe — ~2.5 GB/s sustained reads, ~100 us per fetch (queue + network
#: round trip).  Roughly the paper's "features don't fit" deployments.
REMOTE_TIER = TierSpec(name="remote", bandwidth=2.5e9, latency=100e-6)


@dataclasses.dataclass(frozen=True)
class GatherSplit:
    """One gather's row counts by serving tier."""

    device_rows: int
    p2p_rows: int
    host_rows: int
    remote_rows: int

    @property
    def total(self) -> int:
        return (
            self.device_rows + self.p2p_rows + self.host_rows + self.remote_rows
        )


class TieredFeatureStore:
    """Degree-ordered feature residency across HBM/p2p/host/remote tiers.

    Parameters
    ----------
    features, scores, pool, tag:
        As for :class:`~repro.cache.FeatureCache`: the ``(N, F)`` host
        feature matrix, a per-node hotness ranking (ties break toward
        lower ids), and the device pool the HBM tier is charged to.
    device_ratio:
        Fraction of nodes *planned* for this replica's HBM tier; the
        binary-search admission pins the largest fitting prefix.
    host_ratio:
        Fraction of nodes in the pinned-host tier (taken from the
        hottest rows not already device/p2p resident).  The default 1.0
        leaves no remote tail.
    remote_tier:
        Price of the cold tail (:data:`REMOTE_TIER` by default).
    link, device, replica_id, num_replicas, p2p:
        The peer-to-peer band.  With ``p2p=True``, more than one
        replica, a link, and a device whose
        :func:`~repro.device.p2p_cheaper_than_host` verdict favors the
        link, the top ``num_replicas * plan`` rows are striped
        round-robin: stride ``replica_id`` is pinned locally, the other
        strides are fetched from their owners over ``link``.  Sibling
        admission is assumed symmetric (every replica runs the same
        pool budget), which is exact for the homogeneous clusters the
        simulator builds.
    """

    def __init__(
        self,
        features: np.ndarray,
        scores: np.ndarray,
        *,
        pool: MemoryPool,
        device_ratio: float = DEFAULT_CACHE_RATIO,
        host_ratio: float = DEFAULT_HOST_TIER_RATIO,
        remote_tier: TierSpec = REMOTE_TIER,
        link: LinkSpec | None = None,
        device=None,
        replica_id: int = 0,
        num_replicas: int = 1,
        p2p: bool = False,
        tag: str = "feature_store",
    ) -> None:
        if not 0.0 <= device_ratio <= 1.0:
            raise ShapeError(
                f"device tier ratio must be in [0, 1], got {device_ratio}"
            )
        if not 0.0 <= host_ratio <= 1.0:
            raise ShapeError(
                f"host tier ratio must be in [0, 1], got {host_ratio}"
            )
        scores = np.asarray(scores)
        num_nodes = int(features.shape[0])
        if scores.shape != (num_nodes,):
            raise ShapeError(
                f"scores shape {scores.shape} != nodes ({num_nodes},)"
            )
        if not 0 <= replica_id < max(num_replicas, 1):
            raise ShapeError(
                f"replica {replica_id} outside fleet of {num_replicas}"
            )
        self.pool = pool
        self.remote_tier = remote_tier
        self.link = link
        self.row_bytes = int(features.shape[1]) * features.dtype.itemsize
        self.requested_rows = int(round(device_ratio * num_nodes))
        #: Whether the p2p band is actually engaged: asked for, possible
        #: (siblings + link), and cheaper than the host path.
        self.p2p_enabled = bool(
            p2p
            and num_replicas > 1
            and link is not None
            and device is not None
            and p2p_cheaper_than_host(link, device)
        )
        order = degree_order(scores)

        # --- device (+ p2p) band -------------------------------------
        stride = num_replicas if self.p2p_enabled else 1
        band = order[: min(self.requested_rows * stride, num_nodes)]
        local_plan = band[replica_id::stride] if self.p2p_enabled else band
        rows, allocation = admit_rows(
            pool, self.row_bytes, len(local_plan), tag
        )
        self.allocation: Allocation | None = allocation
        self.cached_ids = np.sort(local_plan[:rows])
        self._tier = np.full(num_nodes, TIER_REMOTE, dtype=np.int8)
        self._tier[self.cached_ids] = TIER_DEVICE
        if self.p2p_enabled:
            # Symmetric-admission assumption: each sibling pins the same
            # prefix length of its own stride.
            for peer in range(num_replicas):
                if peer == replica_id:
                    continue
                self._tier[band[peer::stride][:rows]] = TIER_P2P

        # --- pinned-host band, then the remote tail ------------------
        host_budget = int(round(host_ratio * num_nodes))
        unassigned = order[self._tier[order] == TIER_REMOTE]
        self.host_ids = np.sort(unassigned[:host_budget])
        self._tier[self.host_ids] = TIER_HOST

        self._device_hits = 0
        self._p2p_hits = 0
        self._host_hits = 0
        self._remote_hits = 0
        self._invalidated = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset,
        *,
        pool: MemoryPool,
        device_ratio: float = DEFAULT_CACHE_RATIO,
        host_ratio: float = DEFAULT_HOST_TIER_RATIO,
        remote_tier: TierSpec = REMOTE_TIER,
        link: LinkSpec | None = None,
        device=None,
        replica_id: int = 0,
        num_replicas: int = 1,
        p2p: bool = False,
    ) -> "TieredFeatureStore":
        """The standard policy: rank by in-degree of the dataset graph.

        Global degrees even for sharded replicas: the p2p band is a
        fleet-wide construct (every replica must agree on the stripe),
        so per-shard ranking would break the symmetric-stripe contract.
        """
        degrees = graph_degrees(dataset.graph)
        return cls(
            dataset.features,
            degrees,
            pool=pool,
            device_ratio=device_ratio,
            host_ratio=host_ratio,
            remote_tier=remote_tier,
            link=link,
            device=device,
            replica_id=replica_id,
            num_replicas=num_replicas,
            p2p=p2p,
        )

    # ------------------------------------------------------------------
    @property
    def cached_rows(self) -> int:
        """Locally device-resident rows (the re-replication payload)."""
        return len(self.cached_ids)

    @property
    def cached_bytes(self) -> int:
        return self.allocation.nbytes if self.allocation is not None else 0

    @property
    def host_rows(self) -> int:
        return len(self.host_ids)

    def split(self, nodes: np.ndarray) -> GatherSplit:
        """Per-tier row counts for one gather, without recording them.

        Duplicates count once per occurrence, and an empty gather is a
        legal no-op — same contract as the flat cache's ``split``.
        """
        nodes = np.asarray(nodes)
        if nodes.size == 0:
            return GatherSplit(0, 0, 0, 0)
        counts = np.bincount(self._tier[nodes], minlength=4)
        return GatherSplit(
            device_rows=int(counts[TIER_DEVICE]),
            p2p_rows=int(counts[TIER_P2P]),
            host_rows=int(counts[TIER_HOST]),
            remote_rows=int(counts[TIER_REMOTE]),
        )

    def record_gather(self, nodes: np.ndarray) -> GatherSplit:
        """Split one gather by tier and add it to the epoch tally."""
        split = self.split(nodes)
        self._device_hits += split.device_rows
        self._p2p_hits += split.p2p_rows
        self._host_hits += split.host_rows
        self._remote_hits += split.remote_rows
        return split

    def invalidate(self, rows: np.ndarray) -> int:
        """Demote the device/p2p-resident subset of ``rows`` to host.

        The delta path, mirrored from :meth:`FeatureCache.invalidate`:
        mutated rows fall out of the HBM band (their bytes are still in
        host DRAM, so they land in the pinned-host tier, same fallback
        as :meth:`release`).  The p2p stripe is fleet-symmetric, so a
        sibling's entry for the same row is demoted here too — every
        replica applies the same deltas and reaches the same verdict.
        Returns the count of *locally* pinned rows demoted, which is
        what accumulates in :attr:`CacheStats.invalidated_rows`; the
        device allocation itself is left pinned (tombstoned slots, no
        pool traffic).
        """
        rows = np.asarray(rows)
        if rows.size == 0:
            return 0
        rows = rows.astype(np.int64, copy=False)
        tiers = self._tier[rows]
        local = np.unique(rows[tiers == TIER_DEVICE])
        peer = np.unique(rows[tiers == TIER_P2P])
        if local.size == 0 and peer.size == 0:
            return 0
        self._tier[local] = TIER_HOST
        self._tier[peer] = TIER_HOST
        if local.size:
            keep = self._tier[self.cached_ids] == TIER_DEVICE
            self.cached_ids = self.cached_ids[keep]
        self.host_ids = np.sort(
            np.concatenate([self.host_ids, local, peer])
        )
        self._invalidated += int(local.size)
        return int(local.size)

    def epoch_stats(self) -> CacheStats:
        """Snapshot with the flat-compatible hit/miss semantics.

        ``hits`` counts device-resident lookups only (served at device
        bandwidth, same meaning as the flat cache); everything else is a
        ``miss``, broken down by the tier that answered it.
        """
        return CacheStats(
            cached_rows=self.cached_rows,
            requested_rows=self.requested_rows,
            cached_bytes=self.cached_bytes,
            hits=self._device_hits,
            misses=self._p2p_hits + self._host_hits + self._remote_hits,
            p2p_hits=self._p2p_hits,
            host_hits=self._host_hits,
            remote_hits=self._remote_hits,
            host_rows=self.host_rows,
            invalidated_rows=self._invalidated,
        )

    def reset_epoch(self) -> None:
        """Clear the tally (tier residency is static per session)."""
        self._device_hits = 0
        self._p2p_hits = 0
        self._host_hits = 0
        self._remote_hits = 0

    def release(self) -> None:
        """Return the HBM tier to the pool (idempotent).

        Former device rows fall back to the host tier (they are still in
        host DRAM — releasing the pin does not tier them out to remote),
        and ``requested_rows`` clears so ``evicted_rows`` reads 0, same
        as the flat cache.
        """
        if self.allocation is not None:
            self.pool.free(self.allocation)
            self.allocation = None
            self._tier[self.cached_ids] = TIER_HOST
            self.host_ids = np.sort(
                np.concatenate([self.host_ids, self.cached_ids])
            )
            self.cached_ids = self.cached_ids[:0]
            self.requested_rows = 0
