"""One cache-aware feature-gather accounting path for every consumer.

The serial trainer, the pipelined executor, and the serving replica all
charge a per-batch ``feature_gather`` launch whose shape depends on what
(if anything) fronts the feature table: nothing, a flat
:class:`~repro.cache.FeatureCache`, or a
:class:`~repro.cache.TieredFeatureStore`.  Keeping three hand-rolled
copies of that split in sync is how cache accounting drifts, so the
normalization lives here once:

* no cache        — every row crosses PCIe (``host_rows == gathered``);
* flat cache      — cached rows served from HBM, misses cross PCIe;
* tiered store    — device + host bands go through the local gather
  (host band priced as UVA traffic), the remote tail is reported
  separately so the caller can charge it on its own wire.

Calling :func:`plan_gather` *is* the accounting event: it invokes the
cache's ``record_gather`` exactly once, so hit/miss statistics advance
identically to the historical inlined code.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cache.feature_cache import FeatureCache
from repro.cache.tiered import TieredFeatureStore


@dataclasses.dataclass(frozen=True)
class GatherPlan:
    """Row split of one feature gather, normalized across cache kinds."""

    #: Rows moved by the local gather kernel (device + host bands).
    gathered: int
    #: Subset of ``gathered`` priced as UVA/PCIe traffic.
    host_rows: int
    #: Rows left to the remote tier's wire (tiered store only).
    remote_rows: int = 0
    #: Rows DMA'd from sibling replicas' HBM (tiered store's p2p band).
    p2p_rows: int = 0

    @property
    def device_rows(self) -> int:
        """Rows served straight from local HBM (cache hits)."""
        return self.gathered - self.host_rows


def plan_gather(
    nodes: np.ndarray,
    cache: FeatureCache | TieredFeatureStore | None,
) -> GatherPlan:
    """Split one batch's rows across tiers, advancing cache statistics."""
    total = len(nodes)
    if cache is None:
        return GatherPlan(gathered=total, host_rows=total)
    if isinstance(cache, TieredFeatureStore):
        split = cache.record_gather(nodes)
        return GatherPlan(
            gathered=split.device_rows + split.host_rows,
            host_rows=split.host_rows,
            remote_rows=split.remote_rows,
            p2p_rows=split.p2p_rows,
        )
    _, host_rows = cache.record_gather(nodes)
    return GatherPlan(gathered=total, host_rows=host_rows)


def record_gather(ctx, plan: GatherPlan, row_bytes: int):
    """Charge the local-wire ``feature_gather`` launch for ``plan``.

    The remote tail (``plan.remote_rows``) is deliberately *not* charged
    here — it belongs on the remote tier's own queue, which only the
    pipelined executor models.
    """
    return ctx.record(
        "feature_gather",
        bytes_read=plan.gathered * row_bytes,
        bytes_written=plan.gathered * row_bytes,
        tasks=max(plan.gathered, 1),
        graph_bytes=plan.host_rows * row_bytes,
    )
