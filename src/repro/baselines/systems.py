"""Concrete baseline systems matching the paper's comparison set.

Capability matrices mirror the N/A cells of Figures 7 and 8:

* **DGL** runs everything (the paper's authors hand-implemented the
  missing complex algorithms) on GPU or CPU, eagerly, with UVA.
* **PyG** samples on CPU except DeepWalk (its only GPU sampler) and has
  no UVA; it lacks LADIES/AS-GCN/PASS entirely and runs ShaDow on CPU.
* **SkyWalker** is a GPU walk/neighbor sampler with UVA but, being
  vertex-centric, cannot express layer-wise or tensor-compute
  algorithms.
* **GunRock** only implements GraphSAGE and cannot use UVA.
* **cuGraph** supports walks and uniform neighborhoods through a bulk
  API with large per-call overhead, and cannot load host-resident
  graphs (the paper's PP load never finished).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import make_algorithm
from repro.algorithms.base import Pipeline
from repro.baselines.base import BaselineSystem, Profile, ProfiledPipeline, plain_config
from repro.datasets import Dataset
from repro.sampler import OptimizationConfig

#: Algorithms whose default parameterization needs node features.
_NEEDS_FEATURES = frozenset({"asgcn", "pass"})

_ALL_BENCHED = frozenset(
    {"deepwalk", "node2vec", "graphsage", "ladies", "asgcn", "pass", "shadow",
     "fastgcn"}
)


def _build_inner(
    algorithm: str,
    dataset: Dataset,
    example_seeds: np.ndarray,
    config: OptimizationConfig,
) -> Pipeline:
    algo = make_algorithm(algorithm)
    features = dataset.features if algorithm in _NEEDS_FEATURES else None
    return algo.build(
        dataset.graph, example_seeds, features=features, config=config
    )


class GSamplerSystem(BaselineSystem):
    """gSampler itself, with all optimizations on (the reference row)."""

    name = "gSampler"
    device_kind = "gpu"
    supports_uva = True

    def __init__(self, config: OptimizationConfig | None = None) -> None:
        self.config = config if config is not None else OptimizationConfig()

    def supported_algorithms(self) -> frozenset[str]:
        # ``labor`` is the Matrix-API variance-reduced sampler this
        # reproduction adds; no comparison system implements it.
        return _ALL_BENCHED | frozenset(
            {"graphsaint", "pinsage", "hetgnn", "vrgcn", "seal", "gcn_bs",
             "thanos", "labor"}
        )

    def build_pipeline(
        self, algorithm: str, dataset: Dataset, example_seeds: np.ndarray
    ) -> Pipeline:
        return _build_inner(algorithm, dataset, example_seeds, self.config)


class DGLLike(BaselineSystem):
    """DGL's eager message-passing execution (GPU or CPU).

    Runs the plain (unfused, greedily-laid-out) operator sequence; each
    logical kernel splits into ~2 launches because eager execution
    materializes and re-reads intermediates, and its general-purpose
    kernels carry a modest efficiency penalty versus gSampler's
    specialized ones (the paper's "P beats DGL" observation).
    """

    supports_uva = True

    def __init__(self, device_kind: str = "gpu") -> None:
        self.device_kind = device_kind
        self.name = f"DGL-{device_kind.upper()}"

    def supported_algorithms(self) -> frozenset[str]:
        if self.device_kind == "gpu":
            # No native GPU Node2Vec (Figure 7's N/A cell).
            return _ALL_BENCHED - {"node2vec"}
        return _ALL_BENCHED

    def build_pipeline(
        self, algorithm: str, dataset: Dataset, example_seeds: np.ndarray
    ) -> Pipeline:
        inner = _build_inner(algorithm, dataset, example_seeds, plain_config())
        return ProfiledPipeline(
            inner,
            Profile(cost_scale=1.5, launch_multiplier=3),
        )


class PyGLike(BaselineSystem):
    """PyG: CPU-based sampling loops (GPU only for DeepWalk), no UVA."""

    supports_uva = False

    def __init__(self, device_kind: str = "cpu") -> None:
        self.device_kind = device_kind
        self.name = f"PyG-{device_kind.upper()}"

    def supported_algorithms(self) -> frozenset[str]:
        if self.device_kind == "gpu":
            return frozenset({"deepwalk"})
        return frozenset({"graphsage", "node2vec", "shadow", "deepwalk"})

    def build_pipeline(
        self, algorithm: str, dataset: Dataset, example_seeds: np.ndarray
    ) -> Pipeline:
        inner = _build_inner(algorithm, dataset, example_seeds, plain_config())
        # PyG's Python-level sampling loops are markedly less efficient
        # than DGL's C++ samplers (Table 1: 96.2% sampling share).
        return ProfiledPipeline(
            inner,
            Profile(cost_scale=2.5, launch_multiplier=2),
        )


class SkyWalkerLike(BaselineSystem):
    """SkyWalker: vertex-centric GPU sampling with alias tables and UVA.

    The strongest baseline for simple algorithms.  Frontier-parallel
    execution exposes only one task per frontier (poor occupancy at small
    batches) and suffers warp divergence from skewed degrees — the two
    effects behind gSampler's larger speedups on small graphs.
    """

    name = "SkyWalker"
    device_kind = "gpu"
    supports_uva = True

    def supported_algorithms(self) -> frozenset[str]:
        return frozenset({"deepwalk", "node2vec", "graphsage"})

    def build_pipeline(
        self, algorithm: str, dataset: Dataset, example_seeds: np.ndarray
    ) -> Pipeline:
        inner = _build_inner(algorithm, dataset, example_seeds, plain_config())
        return ProfiledPipeline(
            inner,
            Profile(cost_scale=1.1, divergence=2.0, occupancy_divisor=8.0),
        )


class GunRockLike(BaselineSystem):
    """GunRock: general vertex-centric graph processing; GraphSAGE only,
    no UVA (Figure 7's PP/FS N/A cells)."""

    name = "GunRock"
    device_kind = "gpu"
    supports_uva = False

    def supported_algorithms(self) -> frozenset[str]:
        return frozenset({"graphsage"})

    def build_pipeline(
        self, algorithm: str, dataset: Dataset, example_seeds: np.ndarray
    ) -> Pipeline:
        inner = _build_inner(algorithm, dataset, example_seeds, plain_config())
        return ProfiledPipeline(
            inner,
            Profile(cost_scale=1.6, divergence=3.0, occupancy_divisor=24.0),
        )


class CuGraphLike(BaselineSystem):
    """cuGraph: bulk-API graph library; heavy per-call setup cost.

    The paper finds it "much slower than the other systems on GPU because
    it is inefficient for the mini-batch sampling of graph learning" —
    modeled as a large fixed cost per launch sequence.
    """

    name = "cuGraph"
    device_kind = "gpu"
    supports_uva = False

    def supported_algorithms(self) -> frozenset[str]:
        return frozenset({"deepwalk", "node2vec", "graphsage"})

    def build_pipeline(
        self, algorithm: str, dataset: Dataset, example_seeds: np.ndarray
    ) -> Pipeline:
        inner = _build_inner(algorithm, dataset, example_seeds, plain_config())
        return ProfiledPipeline(
            inner,
            Profile(cost_scale=1.5, fixed_seconds_per_launch=120e-6),
        )


def make_system(name: str) -> BaselineSystem:
    """Instantiate a system by its display name."""
    systems: dict[str, BaselineSystem] = {
        "gsampler": GSamplerSystem(),
        "dgl-gpu": DGLLike("gpu"),
        "dgl-cpu": DGLLike("cpu"),
        "pyg-gpu": PyGLike("gpu"),
        "pyg-cpu": PyGLike("cpu"),
        "skywalker": SkyWalkerLike(),
        "gunrock": GunRockLike(),
        "cugraph": CuGraphLike(),
    }
    try:
        return systems[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; available: {sorted(systems)}"
        ) from None


#: Systems compared in Figure 7 (simple algorithms).
FIGURE7_SYSTEMS = (
    "gsampler",
    "dgl-gpu",
    "dgl-cpu",
    "pyg-gpu",
    "pyg-cpu",
    "skywalker",
    "gunrock",
    "cugraph",
)

#: Systems compared in Figure 8 (complex algorithms).
FIGURE8_SYSTEMS = ("gsampler", "dgl-gpu", "dgl-cpu", "pyg-cpu")
