"""Baseline execution models (paper Table 3 and Section 5.1).

Every baseline runs the *same logical sampling work* as gSampler — the
samples it produces are real — but issues kernel launches the way its
execution model would:

* eager message-passing systems (DGL, PyG) run the unoptimized operator
  sequence, materializing every intermediate, with greedy per-operator
  format choices and no fusion or super-batching;
* vertex-centric systems (SkyWalker, GunRock, NextDoor-style) parallelize
  over frontiers instead of edges, paying warp divergence and load
  imbalance from skewed degrees;
* bulk-API libraries (cuGraph) add a fixed per-call setup cost that
  dwarfs small mini-batches.

A :class:`Profile` captures those differences as launch-record
transformations, so all systems are priced by the same device simulator
and differ only in the documented execution characteristics.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.algorithms.base import Pipeline
from repro.core import new_rng
from repro.datasets import Dataset
from repro.device import ExecutionContext
from repro.errors import UnsupportedAlgorithmError
from repro.sampler import OptimizationConfig


@dataclasses.dataclass(frozen=True)
class Profile:
    """How a system's execution model distorts each kernel launch."""

    #: Kernel implementation efficiency relative to gSampler's (>= 1).
    cost_scale: float = 1.0
    #: Multiplier on warp divergence (vertex-centric thread divergence).
    divergence: float = 1.0
    #: Divisor on a launch's parallel task count (frontier-parallel
    #: systems expose far fewer tasks than edge-parallel ones).
    occupancy_divisor: float = 1.0
    #: Flat per-launch cost in seconds (bulk-API setup).
    fixed_seconds_per_launch: float = 0.0
    #: Extra launches per logical launch (eager systems materialize and
    #: re-load intermediates that fused execution keeps in registers).
    launch_multiplier: int = 1


class ProfiledPipeline(Pipeline):
    """Runs an inner pipeline, replaying its launches under a profile."""

    def __init__(self, inner: Pipeline, profile: Profile) -> None:
        self.inner = inner
        self.profile = profile
        self.supports_superbatch = False  # baselines don't super-batch

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = None,  # type: ignore[assignment]
        rng: np.random.Generator | None = None,
    ) -> object:
        rng = rng if rng is not None else new_rng(None)
        inner_ctx = ExecutionContext(
            ctx.device,
            graph_on_device=ctx.graph_on_device,
            memory=ctx.memory,
            cost_scale=1.0,
        )
        result = self.inner.sample_batch(seeds, ctx=inner_ctx, rng=rng)
        p = self.profile
        for launch in inner_ctx.launches:
            for _ in range(p.launch_multiplier):
                ctx.record(
                    launch.name,
                    bytes_read=launch.bytes_read * p.cost_scale / p.launch_multiplier,
                    bytes_written=launch.bytes_written
                    * p.cost_scale
                    / p.launch_multiplier,
                    flops=launch.flops * p.cost_scale / p.launch_multiplier,
                    tasks=max(1, int(launch.tasks / p.occupancy_divisor)),
                    divergence=launch.divergence * p.divergence,
                    graph_bytes=launch.uva_bytes,
                    fixed_seconds=p.fixed_seconds_per_launch,
                )
        return result


class BaselineSystem(abc.ABC):
    """One row of the comparison: a named system on a fixed device kind."""

    #: Display name used by benchmarks ("DGL-GPU", "SkyWalker", ...).
    name: str
    #: "gpu" or "cpu".
    device_kind: str
    #: Whether the system can reach host-resident graphs from the GPU.
    supports_uva: bool

    @abc.abstractmethod
    def supported_algorithms(self) -> frozenset[str]:
        """Names this system can run at all."""

    def check_support(self, algorithm: str, dataset: Dataset) -> None:
        """Raise :class:`UnsupportedAlgorithmError` for N/A cells."""
        if algorithm not in self.supported_algorithms():
            raise UnsupportedAlgorithmError(
                self.name, algorithm, "algorithm not implemented by this system"
            )
        if (
            self.device_kind == "gpu"
            and not dataset.graph_on_device
            and not self.supports_uva
        ):
            raise UnsupportedAlgorithmError(
                self.name,
                algorithm,
                f"graph {dataset.name} exceeds GPU memory and the system "
                "has no UVA support",
            )

    @abc.abstractmethod
    def build_pipeline(
        self,
        algorithm: str,
        dataset: Dataset,
        example_seeds: np.ndarray,
    ) -> Pipeline:
        """Construct this system's pipeline for ``algorithm``."""


def plain_config() -> OptimizationConfig:
    """The eager, unoptimized configuration baselines execute with."""
    return OptimizationConfig.plain()
