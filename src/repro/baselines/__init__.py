"""Baseline GPU/CPU sampling systems reproduced as execution models."""

from repro.baselines.base import (
    BaselineSystem,
    Profile,
    ProfiledPipeline,
    plain_config,
)
from repro.baselines.message_passing import (
    MessagePassingGraph,
    copy_e,
    copy_u,
    dgl_normalize,
    matrix_normalize,
    reduce_max,
    reduce_mean,
    reduce_sum,
    u_mul_e,
)
from repro.baselines.systems import (
    FIGURE7_SYSTEMS,
    FIGURE8_SYSTEMS,
    CuGraphLike,
    DGLLike,
    GSamplerSystem,
    GunRockLike,
    PyGLike,
    SkyWalkerLike,
    make_system,
)

__all__ = [
    "FIGURE7_SYSTEMS",
    "FIGURE8_SYSTEMS",
    "BaselineSystem",
    "CuGraphLike",
    "DGLLike",
    "GSamplerSystem",
    "GunRockLike",
    "MessagePassingGraph",
    "Profile",
    "ProfiledPipeline",
    "PyGLike",
    "SkyWalkerLike",
    "copy_e",
    "copy_u",
    "dgl_normalize",
    "make_system",
    "matrix_normalize",
    "plain_config",
    "reduce_max",
    "reduce_mean",
    "reduce_sum",
    "u_mul_e",
]
