"""A DGL-style message-passing API, for the Figure 2 comparison.

Figure 2 of the paper contrasts computing LADIES's sampling bias with
DGL's message-passing interface (7 lines: stash edge data, build message
and reduce functions, ``update_all``, read node data back) against the
matrix abstraction (2 lines).  This module implements that interface
faithfully — ``edata``/``ndata`` dicts, message builders (``copy_e``,
``u_mul_e``), reducers (``sum``/``mean``/``max``), and ``update_all`` —
so the comparison is between two *working* APIs in this codebase, not a
working API and a quotation.

It is also what the DGL-like baseline conceptually executes: every
``update_all`` is an eager scatter-gather over the edges.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import GSamplerError, ShapeError

_ITEM = 8
_VAL = 4


@dataclasses.dataclass(frozen=True)
class MessageFunc:
    """A message builder: produces one value per edge."""

    kind: str  # "copy_e" | "u_mul_e" | "copy_u"
    src_field: str
    out_field: str


@dataclasses.dataclass(frozen=True)
class ReduceFunc:
    """A reducer: aggregates incoming messages per destination node."""

    op: str  # "sum" | "mean" | "max"
    msg_field: str
    out_field: str


def copy_e(field: str, out: str) -> MessageFunc:
    """Message = the edge's own data (DGL's ``dgl.function.copy_e``)."""
    return MessageFunc("copy_e", field, out)


def copy_u(field: str, out: str) -> MessageFunc:
    """Message = the source node's data (``dgl.function.copy_u``)."""
    return MessageFunc("copy_u", field, out)


def u_mul_e(u_field: str, e_field: str, out: str) -> MessageFunc:
    """Message = source data * edge data (``dgl.function.u_mul_e``)."""
    return MessageFunc("u_mul_e", f"{u_field}\x00{e_field}", out)


def reduce_sum(msg: str, out: str) -> ReduceFunc:
    """Sum incoming messages per node (``dgl.function.sum``)."""
    return ReduceFunc("sum", msg, out)


def reduce_mean(msg: str, out: str) -> ReduceFunc:
    """Average incoming messages per node."""
    return ReduceFunc("mean", msg, out)


def reduce_max(msg: str, out: str) -> ReduceFunc:
    """Max over incoming messages per node."""
    return ReduceFunc("max", msg, out)


class MessagePassingGraph:
    """A graph exposing DGL's fine-grained node/edge-data interface.

    Note the *direction* convention: messages flow along edges
    ``u -> v``, i.e. from matrix rows to matrix columns, so reducers
    aggregate over each column's in-edges — the same neighborhoods the
    sampling operators traverse.
    """

    def __init__(self, matrix: Matrix, ctx: ExecutionContext = NULL_CONTEXT) -> None:
        self.matrix = matrix
        self.ctx = ctx
        coo = matrix.get("coo")
        self._src = coo.rows
        self._dst = coo.cols
        self.edata: dict[str, np.ndarray] = {"w": np.asarray(coo.values
            if coo.values is not None else np.ones(coo.nnz, dtype=np.float32))}
        self.ndata: dict[str, np.ndarray] = {}

    @property
    def num_nodes(self) -> int:
        return max(self.matrix.shape)

    @property
    def num_edges(self) -> int:
        return len(self._src)

    # ------------------------------------------------------------------
    def apply_edges(self, fn: Callable[[np.ndarray], np.ndarray], field: str) -> None:
        """Transform one edge field in place (an eager edge kernel)."""
        if field not in self.edata:
            raise GSamplerError(f"unknown edge field {field!r}")
        self.edata[field] = fn(self.edata[field])
        self.ctx.record(
            "mp_apply_edges",
            bytes_read=self.num_edges * _VAL,
            bytes_written=self.num_edges * _VAL,
            flops=self.num_edges,
            tasks=max(self.num_edges, 1),
        )

    def _messages(self, msg_fn: MessageFunc) -> np.ndarray:
        if msg_fn.kind == "copy_e":
            return np.asarray(self.edata[msg_fn.src_field])
        if msg_fn.kind == "copy_u":
            return np.asarray(self.ndata[msg_fn.src_field])[self._src]
        if msg_fn.kind == "u_mul_e":
            u_field, e_field = msg_fn.src_field.split("\x00")
            return (
                np.asarray(self.ndata[u_field])[self._src]
                * np.asarray(self.edata[e_field])
            )
        raise GSamplerError(f"unknown message function {msg_fn.kind!r}")

    def update_all(self, msg_fn: MessageFunc, reduce_fn: ReduceFunc) -> None:
        """DGL's workhorse: send messages on all edges, reduce per node.

        Eager semantics: the message array is fully materialized before
        the reduction — exactly the intermediate gSampler's
        Edge-MapReduce fusion avoids.
        """
        if msg_fn.out_field != reduce_fn.msg_field:
            raise ShapeError(
                f"reducer consumes {reduce_fn.msg_field!r} but messages "
                f"write {msg_fn.out_field!r}"
            )
        messages = self._messages(msg_fn)
        n = self.num_nodes
        if reduce_fn.op in ("sum", "mean"):
            acc = np.bincount(
                self._dst, weights=messages.astype(np.float64), minlength=n
            )
            if reduce_fn.op == "mean":
                counts = np.bincount(self._dst, minlength=n)
                with np.errstate(invalid="ignore", divide="ignore"):
                    acc = np.where(counts > 0, acc / counts, 0.0)
            out = acc.astype(np.float32)
        elif reduce_fn.op == "max":
            out = np.full(n, -np.inf, dtype=np.float32)
            np.maximum.at(out, self._dst, messages.astype(np.float32))
        else:
            raise GSamplerError(f"unknown reducer {reduce_fn.op!r}")
        self.ndata[reduce_fn.out_field] = out
        # Two eager kernels: materialize messages, then scatter-reduce.
        self.ctx.record(
            "mp_message",
            bytes_read=self.num_edges * (_ITEM + _VAL),
            bytes_written=self.num_edges * _VAL,
            flops=self.num_edges,
            tasks=max(self.num_edges, 1),
        )
        self.ctx.record(
            "mp_reduce",
            bytes_read=self.num_edges * (_ITEM + _VAL) * 2,  # atomics
            bytes_written=n * _VAL,
            flops=self.num_edges * 2,
            tasks=max(self.num_edges, 1),
        )


def dgl_normalize(g: MessagePassingGraph) -> np.ndarray:
    """Figure 2 (left): LADIES bias via message passing, 7 lines of API.

    Messages flow row -> column, so the bias lands on each column node —
    compare with the matrix form (Figure 2, right)::

        h = (A ** 2).sum(axis=1)
        return h / h.sum()
    """
    g.edata["e"] = g.edata["w"] ** 2
    msg_fn = copy_e("e", "e")
    red_fn = reduce_sum("e", "h")
    g.update_all(msg_fn, red_fn)
    h = g.ndata["h"]
    return h / h.sum()


def matrix_normalize(a: Matrix) -> np.ndarray:
    """Figure 2 (right): the same bias with the matrix abstraction."""
    h = (a ** 2).sum(axis=1)
    return h / h.sum()
