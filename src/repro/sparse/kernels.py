"""Compute kernels over sparse matrices.

Each function both performs the computation (vectorized NumPy) and reports
its workload to an :class:`~repro.device.ExecutionContext`, which converts
it into simulated device time.  Kernels are layout-aware: the same logical
operator costs differently on CSC, CSR, and COO, reproducing the
per-operator preferences in Table 5 of the paper (e.g. column slicing is
fast on CSC and slow on COO/CSR; per-row reduction is fast on CSR).

The fused kernels at the bottom implement gSampler's Edge-Map and
Edge-MapReduce fusion (Section 4.2): they read inputs once and write only
the final output, skipping the global-memory round trips an eager
execution would pay for intermediates.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import FormatError, ShapeError
from repro.sparse.formats import (
    COO,
    CSC,
    CSR,
    INDEX_DTYPE,
    VALUE_DTYPE,
    SparseFormat,
    as_index_array,
    edge_values,
    gather_ranges,
)

_ITEM = 8  # bytes per index element
_VAL = 4  # bytes per value element


# ---------------------------------------------------------------------------
# Structure: slicing
# ---------------------------------------------------------------------------
def slice_columns(
    matrix: SparseFormat,
    cols: np.ndarray,
    ctx: ExecutionContext = NULL_CONTEXT,
    *,
    graph_read: bool = False,
) -> SparseFormat:
    """``A[:, cols]`` — keep the selected columns, renumbered ``0..T-1``.

    The output layout matches the input layout.  ``graph_read`` marks the
    read as touching the original graph's storage, which is priced as UVA
    traffic when the graph lives in host memory.
    """
    cols = as_index_array(cols)
    if isinstance(matrix, CSC):
        return _slice_columns_csc(matrix, cols, ctx, graph_read)
    if isinstance(matrix, COO):
        return _slice_columns_coo(matrix, cols, ctx, graph_read)
    if isinstance(matrix, CSR):
        return _slice_columns_csr(matrix, cols, ctx, graph_read)
    raise FormatError(f"cannot slice columns of {type(matrix).__name__}")


def _slice_columns_csc(
    csc: CSC, cols: np.ndarray, ctx: ExecutionContext, graph_read: bool
) -> CSC:
    starts = csc.indptr[cols]
    lengths = csc.indptr[cols + 1] - starts
    flat = gather_ranges(starts, lengths)
    indptr = np.zeros(len(cols) + 1, dtype=INDEX_DTYPE)
    np.cumsum(lengths, out=indptr[1:])
    out = CSC(
        indptr=indptr,
        rows=csc.rows[flat],
        values=None if csc.values is None else csc.values[flat],
        shape=(csc.shape[0], len(cols)),
        edge_ids=None if csc.edge_ids is None else csc.edge_ids[flat],
    )
    read = len(cols) * 2 * _ITEM + out.nnz * (_ITEM + _VAL)
    ctx.record(
        "slice_columns_csc",
        bytes_read=read,
        bytes_written=out.nbytes(),
        flops=out.nnz,
        tasks=max(out.nnz, 1),  # one gather lane per edge
        graph_bytes=read if graph_read else 0.0,
    )
    return out


def _sorted_select(
    keys: np.ndarray, wanted: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of every occurrence of each wanted key (duplicates kept).

    Returns ``(flat_positions, out_index)`` where ``out_index[i]`` is the
    position in ``wanted`` that ``flat_positions[i]`` was selected for.
    Duplicate entries of ``wanted`` duplicate the matching items, which
    is required because frontier lists may repeat nodes (e.g. walks).
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.searchsorted(sorted_keys, wanted, side="left")
    ends = np.searchsorted(sorted_keys, wanted, side="right")
    lengths = ends - starts
    flat_sorted = gather_ranges(starts, lengths)
    out_index = np.repeat(
        np.arange(len(wanted), dtype=INDEX_DTYPE), lengths
    )
    return order[flat_sorted], out_index


def _slice_columns_coo(
    coo: COO, cols: np.ndarray, ctx: ExecutionContext, graph_read: bool
) -> COO:
    # COO has no column index: the edge list must be sorted/scanned to
    # find each requested column's edges.  This is why Table 5 shows
    # A[:, frontiers] at 18.4 ms on COO vs 1.3 ms on CSC.
    flat, new_cols = _sorted_select(coo.cols, cols)
    out = COO(
        rows=coo.rows[flat],
        cols=new_cols,
        values=None if coo.values is None else coo.values[flat],
        shape=(coo.shape[0], len(cols)),
        edge_ids=None if coo.edge_ids is None else coo.edge_ids[flat],
    )
    log_e = max(1.0, np.log2(max(coo.nnz, 2)))
    # Sort-based selection sweeps the edge list O(log E) times.
    read = coo.nbytes() * log_e + len(cols) * _ITEM
    ctx.record(
        "slice_columns_coo",
        bytes_read=read,
        bytes_written=out.nbytes() + coo.shape[1] * _ITEM,
        flops=coo.nnz * log_e,
        tasks=max(coo.nnz, 1),
        graph_bytes=read if graph_read else 0.0,
    )
    return out


def _slice_columns_csr(
    csr: CSR, cols: np.ndarray, ctx: ExecutionContext, graph_read: bool
) -> CSR:
    # CSR groups by row, so selecting columns scans/sorts all edges and
    # then rebuilds the row pointer over the survivors.
    all_rows = csr.expand_rows()
    flat, new_cols = _sorted_select(csr.cols, cols)
    sel_rows = all_rows[flat]
    # Restore row-major ordering for the CSR output.
    order = np.argsort(sel_rows, kind="stable")
    sel_rows = sel_rows[order]
    counts = np.bincount(sel_rows, minlength=csr.shape[0])
    indptr = np.zeros(csr.shape[0] + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    flat = flat[order]
    out = CSR(
        indptr=indptr,
        cols=new_cols[order],
        values=None if csr.values is None else csr.values[flat],
        shape=(csr.shape[0], len(cols)),
        edge_ids=None if csr.edge_ids is None else csr.edge_ids[flat],
    )
    log_e = max(1.0, np.log2(max(csr.nnz, 2)))
    read = csr.nbytes() * log_e + len(cols) * _ITEM
    ctx.record(
        "slice_columns_csr",
        bytes_read=read,
        bytes_written=out.nbytes() + csr.shape[1] * _ITEM,
        flops=csr.nnz * log_e,
        tasks=max(csr.nnz, 1),
        graph_bytes=read if graph_read else 0.0,
    )
    return out


def slice_rows(
    matrix: SparseFormat,
    rows: np.ndarray,
    ctx: ExecutionContext = NULL_CONTEXT,
    *,
    graph_read: bool = False,
) -> SparseFormat:
    """``A[rows, :]`` — keep the selected rows, renumbered ``0..R-1``."""
    rows = as_index_array(rows)
    if isinstance(matrix, CSR):
        return _slice_rows_csr(matrix, rows, ctx, graph_read)
    if isinstance(matrix, COO):
        return _slice_rows_coo(matrix, rows, ctx, graph_read)
    if isinstance(matrix, CSC):
        return _slice_rows_csc(matrix, rows, ctx, graph_read)
    raise FormatError(f"cannot slice rows of {type(matrix).__name__}")


def _slice_rows_csr(
    csr: CSR, rows: np.ndarray, ctx: ExecutionContext, graph_read: bool
) -> CSR:
    starts = csr.indptr[rows]
    lengths = csr.indptr[rows + 1] - starts
    flat = gather_ranges(starts, lengths)
    indptr = np.zeros(len(rows) + 1, dtype=INDEX_DTYPE)
    np.cumsum(lengths, out=indptr[1:])
    out = CSR(
        indptr=indptr,
        cols=csr.cols[flat],
        values=None if csr.values is None else csr.values[flat],
        shape=(len(rows), csr.shape[1]),
        edge_ids=None if csr.edge_ids is None else csr.edge_ids[flat],
    )
    read = len(rows) * 2 * _ITEM + out.nnz * (_ITEM + _VAL)
    ctx.record(
        "slice_rows_csr",
        bytes_read=read,
        bytes_written=out.nbytes(),
        flops=out.nnz,
        tasks=max(out.nnz, 1),  # one gather lane per edge
        graph_bytes=read if graph_read else 0.0,
    )
    return out


def _slice_rows_coo(
    coo: COO, rows: np.ndarray, ctx: ExecutionContext, graph_read: bool
) -> COO:
    flat, new_rows = _sorted_select(coo.rows, rows)
    out = COO(
        rows=new_rows,
        cols=coo.cols[flat],
        values=None if coo.values is None else coo.values[flat],
        shape=(len(rows), coo.shape[1]),
        edge_ids=None if coo.edge_ids is None else coo.edge_ids[flat],
    )
    log_e = max(1.0, np.log2(max(coo.nnz, 2)))
    read = coo.nbytes() * log_e + len(rows) * _ITEM
    ctx.record(
        "slice_rows_coo",
        bytes_read=read,
        bytes_written=out.nbytes() + coo.shape[0] * _ITEM,
        flops=coo.nnz * log_e,
        tasks=max(coo.nnz, 1),
        graph_bytes=read if graph_read else 0.0,
    )
    return out


def _slice_rows_csc(
    csc: CSC, rows: np.ndarray, ctx: ExecutionContext, graph_read: bool
) -> CSC:
    all_cols = csc.expand_cols()
    flat, new_rows = _sorted_select(csc.rows, rows)
    sel_cols = all_cols[flat]
    # Restore column-major ordering for the CSC output.
    order = np.argsort(sel_cols, kind="stable")
    sel_cols = sel_cols[order]
    counts = np.bincount(sel_cols, minlength=csc.shape[1])
    indptr = np.zeros(csc.shape[1] + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    flat = flat[order]
    out = CSC(
        indptr=indptr,
        rows=new_rows[order],
        values=None if csc.values is None else csc.values[flat],
        shape=(len(rows), csc.shape[1]),
        edge_ids=None if csc.edge_ids is None else csc.edge_ids[flat],
    )
    log_e = max(1.0, np.log2(max(csc.nnz, 2)))
    read = csc.nbytes() * log_e + len(rows) * _ITEM
    ctx.record(
        "slice_rows_csc",
        bytes_read=read,
        bytes_written=out.nbytes() + csc.shape[0] * _ITEM,
        flops=csc.nnz * log_e,
        tasks=max(csc.nnz, 1),
        graph_bytes=read if graph_read else 0.0,
    )
    return out


# ---------------------------------------------------------------------------
# Per-edge index views
# ---------------------------------------------------------------------------
def edge_endpoints(
    matrix: SparseFormat, ctx: ExecutionContext = NULL_CONTEXT
) -> tuple[np.ndarray, np.ndarray]:
    """Per-edge ``(row, col)`` index arrays for any layout.

    COO holds both natively; CSR/CSC must expand their pointer array,
    which is charged as an extra decompression kernel.
    """
    if isinstance(matrix, COO):
        return matrix.rows, matrix.cols
    if isinstance(matrix, CSR):
        rows = matrix.expand_rows()
        ctx.record(
            "expand_indptr",
            bytes_read=matrix.indptr.nbytes,
            bytes_written=rows.nbytes,
            flops=matrix.nnz,
            tasks=max(matrix.nnz, 1),
        )
        return rows, matrix.cols
    if isinstance(matrix, CSC):
        cols = matrix.expand_cols()
        ctx.record(
            "expand_indptr",
            bytes_read=matrix.indptr.nbytes,
            bytes_written=cols.nbytes,
            flops=matrix.nnz,
            tasks=max(matrix.nnz, 1),
        )
        return matrix.rows, cols
    raise FormatError(f"unknown sparse container {type(matrix).__name__}")


def _with_values(matrix: SparseFormat, values: np.ndarray) -> SparseFormat:
    """Copy of ``matrix`` with its values replaced (topology shared)."""
    values = values.astype(VALUE_DTYPE, copy=False)
    if isinstance(matrix, COO):
        return COO(matrix.rows, matrix.cols, values, matrix.shape, matrix.edge_ids)
    if isinstance(matrix, CSR):
        return CSR(matrix.indptr, matrix.cols, values, matrix.shape, matrix.edge_ids)
    if isinstance(matrix, CSC):
        return CSC(matrix.indptr, matrix.rows, values, matrix.shape, matrix.edge_ids)
    raise FormatError(f"unknown sparse container {type(matrix).__name__}")


# ---------------------------------------------------------------------------
# Edge-map operators
# ---------------------------------------------------------------------------
_BINARY_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "pow": np.power,
}

_UNARY_OPS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "exp": np.exp,
    "log": np.log,
    "abs": np.abs,
    "neg": np.negative,
    "sqrt": np.sqrt,
    "relu": lambda x: np.maximum(x, 0.0),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
}


def map_edges_scalar(
    matrix: SparseFormat,
    op: str,
    scalar: float,
    ctx: ExecutionContext = NULL_CONTEXT,
    *,
    reverse: bool = False,
) -> SparseFormat:
    """Element-wise ``A <op> v`` (or ``v <op> A`` when reversed)."""
    if op not in _BINARY_OPS:
        raise FormatError(f"unknown scalar edge op {op!r}")
    vals = edge_values(matrix)
    # Saturating float32 semantics (GPU-like): overflow becomes inf
    # silently rather than warning.
    with np.errstate(over="ignore"):
        if reverse:
            out_vals = _BINARY_OPS[op](VALUE_DTYPE(scalar), vals)
        else:
            out_vals = _BINARY_OPS[op](vals, VALUE_DTYPE(scalar))
    ctx.record(
        f"edge_map_{op}_scalar",
        bytes_read=vals.nbytes,
        bytes_written=out_vals.nbytes,
        flops=matrix.nnz,
        tasks=max(matrix.nnz, 1),
    )
    return _with_values(matrix, out_vals)


def map_edges_unary(
    matrix: SparseFormat, op: str, ctx: ExecutionContext = NULL_CONTEXT
) -> SparseFormat:
    """Element-wise unary op (exp/log/relu/...) over edge values."""
    if op not in _UNARY_OPS:
        raise FormatError(f"unknown unary edge op {op!r}")
    vals = edge_values(matrix)
    out_vals = _UNARY_OPS[op](vals)
    ctx.record(
        f"edge_map_{op}",
        bytes_read=vals.nbytes,
        bytes_written=out_vals.nbytes,
        flops=matrix.nnz,
        tasks=max(matrix.nnz, 1),
    )
    return _with_values(matrix, out_vals)


def map_edges_broadcast(
    matrix: SparseFormat,
    op: str,
    vector: np.ndarray,
    axis: int,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> SparseFormat:
    """Broadcast ``A.<op>(V, axis)``: combine each edge with a node value.

    ``axis=0`` broadcasts ``vector[row]`` onto each edge (vector length is
    the row count); ``axis=1`` broadcasts ``vector[col]``.
    """
    if op not in _BINARY_OPS:
        raise FormatError(f"unknown broadcast edge op {op!r}")
    vector = np.asarray(vector, dtype=VALUE_DTYPE)
    expected = matrix.shape[0] if axis == 0 else matrix.shape[1]
    if axis not in (0, 1):
        raise ShapeError(f"broadcast axis must be 0 or 1, got {axis}")
    if vector.shape != (expected,):
        raise ShapeError(
            f"broadcast vector has shape {vector.shape}, expected ({expected},)"
        )
    rows, cols = edge_endpoints(matrix, ctx)
    idx = rows if axis == 0 else cols
    vals = edge_values(matrix)
    out_vals = _BINARY_OPS[op](vals, vector[idx])
    ctx.record(
        f"edge_map_{op}_broadcast",
        bytes_read=vals.nbytes + matrix.nnz * (_ITEM + _VAL),
        bytes_written=out_vals.nbytes,
        flops=matrix.nnz,
        tasks=max(matrix.nnz, 1),
    )
    return _with_values(matrix, out_vals)


def map_edges_combine(
    a: SparseFormat,
    op: str,
    b: SparseFormat,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> SparseFormat:
    """Element-wise combine of two matrices sharing the same topology.

    Used for e.g. ``sub_A * att`` in PASS, where ``att`` was derived from
    ``sub_A`` and therefore has an identical edge set in identical order.
    """
    if op not in _BINARY_OPS:
        raise FormatError(f"unknown combine edge op {op!r}")
    if a.shape != b.shape or a.nnz != b.nnz:
        raise ShapeError(
            f"combine requires matching topology, got {a.shape}/{a.nnz} "
            f"vs {b.shape}/{b.nnz}"
        )
    va, vb = edge_values(a), edge_values(b)
    out_vals = _BINARY_OPS[op](va, vb)
    ctx.record(
        f"edge_combine_{op}",
        bytes_read=va.nbytes + vb.nbytes,
        bytes_written=out_vals.nbytes,
        flops=a.nnz,
        tasks=max(a.nnz, 1),
    )
    return _with_values(a, out_vals)


# ---------------------------------------------------------------------------
# Edge-reduce operators
# ---------------------------------------------------------------------------
def _segment_reduce(
    values: np.ndarray, indptr: np.ndarray, op: str
) -> np.ndarray:
    """Reduce contiguous segments described by ``indptr``."""
    n = len(indptr) - 1
    lengths = np.diff(indptr)
    if op == "sum" or op == "mean":
        if len(values) and not np.all(np.isfinite(values)):
            # Prefix-sum differencing would poison every segment after a
            # non-finite value (inf - inf = nan); scatter-add keeps
            # inf/nan confined to their own segments, matching the
            # COO-layout reduction so layout selection cannot change
            # results on overflowed inputs.
            seg_ids = np.repeat(np.arange(n, dtype=INDEX_DTYPE), lengths)
            out = np.bincount(
                seg_ids, weights=values.astype(np.float64), minlength=n
            )
        else:
            # Exact segmented sum via prefix sums; immune to the
            # empty-segment corner cases of ``np.add.reduceat``.
            csum = np.zeros(len(values) + 1, dtype=np.float64)
            np.cumsum(values, dtype=np.float64, out=csum[1:])
            out = csum[indptr[1:]] - csum[indptr[:-1]]
        if op == "mean":
            with np.errstate(invalid="ignore", divide="ignore"):
                out = out / lengths
            out[lengths == 0] = 0.0
        return out.astype(VALUE_DTYPE)
    if op in ("max", "min"):
        fill = -np.inf if op == "max" else np.inf
        acc = np.full(n, fill, dtype=VALUE_DTYPE)
        if len(values):
            seg_ids = np.repeat(np.arange(n, dtype=INDEX_DTYPE), lengths)
            ufunc = np.maximum if op == "max" else np.minimum
            ufunc.at(acc, seg_ids, values)
        return acc
    raise FormatError(f"unknown reduce op {op!r}")


def reduce_rows(
    matrix: SparseFormat, op: str = "sum", ctx: ExecutionContext = NULL_CONTEXT
) -> np.ndarray:
    """``A.sum(axis=0)`` family: reduce each row's edges to one value.

    Returns a dense vector of length ``shape[0]``.  CSR does this with a
    single segmented reduce; COO/CSC pay a scatter (histogram) pass, which
    is why Table 5 shows CSR fastest for ``sub_A.sum()``.
    """
    vals = edge_values(matrix)
    if isinstance(matrix, CSR):
        out = _segment_reduce(vals, matrix.indptr, op)
        cost_factor = 1.0
    else:
        rows, _ = edge_endpoints(matrix, ctx)
        if op == "sum":
            out = np.bincount(
                rows, weights=vals.astype(np.float64), minlength=matrix.shape[0]
            ).astype(VALUE_DTYPE)
        elif op == "mean":
            sums = np.bincount(
                rows, weights=vals.astype(np.float64), minlength=matrix.shape[0]
            )
            counts = np.bincount(rows, minlength=matrix.shape[0])
            with np.errstate(invalid="ignore", divide="ignore"):
                out = (sums / counts).astype(VALUE_DTYPE)
            out[counts == 0] = 0.0
        elif op in ("max", "min"):
            fill = -np.inf if op == "max" else np.inf
            acc = np.full(matrix.shape[0], fill, dtype=VALUE_DTYPE)
            ufunc = np.maximum if op == "max" else np.minimum
            ufunc.at(acc, rows, vals)
            out = acc
        else:
            raise FormatError(f"unknown reduce op {op!r}")
        cost_factor = 2.0  # scatter with atomics
    atomic = 1.0 if cost_factor == 1.0 else 2.0
    ctx.record(
        f"edge_reduce_rows_{op}",
        bytes_read=(vals.nbytes + matrix.nnz * _ITEM) * atomic,
        bytes_written=matrix.shape[0] * _VAL,
        flops=matrix.nnz * cost_factor,
        tasks=max(matrix.nnz, 1),
    )
    return out


def reduce_cols(
    matrix: SparseFormat, op: str = "sum", ctx: ExecutionContext = NULL_CONTEXT
) -> np.ndarray:
    """``A.sum(axis=1)`` family: reduce each column's edges to one value."""
    vals = edge_values(matrix)
    if isinstance(matrix, CSC):
        out = _segment_reduce(vals, matrix.indptr, op)
        cost_factor = 1.0
    else:
        _, cols = edge_endpoints(matrix, ctx)
        if op == "sum":
            out = np.bincount(
                cols, weights=vals.astype(np.float64), minlength=matrix.shape[1]
            ).astype(VALUE_DTYPE)
        elif op == "mean":
            sums = np.bincount(
                cols, weights=vals.astype(np.float64), minlength=matrix.shape[1]
            )
            counts = np.bincount(cols, minlength=matrix.shape[1])
            with np.errstate(invalid="ignore", divide="ignore"):
                out = (sums / counts).astype(VALUE_DTYPE)
            out[counts == 0] = 0.0
        elif op in ("max", "min"):
            fill = -np.inf if op == "max" else np.inf
            acc = np.full(matrix.shape[1], fill, dtype=VALUE_DTYPE)
            ufunc = np.maximum if op == "max" else np.minimum
            ufunc.at(acc, cols, vals)
            out = acc
        else:
            raise FormatError(f"unknown reduce op {op!r}")
        cost_factor = 2.0
    atomic = 1.0 if cost_factor == 1.0 else 2.0
    ctx.record(
        f"edge_reduce_cols_{op}",
        bytes_read=(vals.nbytes + matrix.nnz * _ITEM) * atomic,
        bytes_written=matrix.shape[1] * _VAL,
        flops=matrix.nnz * cost_factor,
        tasks=max(matrix.nnz, 1),
    )
    return out


# ---------------------------------------------------------------------------
# Dense interactions
# ---------------------------------------------------------------------------
def spmm(
    matrix: SparseFormat,
    dense: np.ndarray,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> np.ndarray:
    """Sparse @ dense: ``(M, N) @ (N, K) -> (M, K)``."""
    dense = np.asarray(dense, dtype=VALUE_DTYPE)
    if dense.ndim == 1:
        dense = dense[:, None]
        squeeze = True
    else:
        squeeze = False
    if dense.shape[0] != matrix.shape[1]:
        raise ShapeError(
            f"spmm inner dims differ: {matrix.shape} @ {dense.shape}"
        )
    rows, cols = edge_endpoints(matrix, ctx)
    vals = edge_values(matrix)
    out = np.zeros((matrix.shape[0], dense.shape[1]), dtype=np.float64)
    np.add.at(out, rows, vals[:, None].astype(np.float64) * dense[cols])
    result = out.astype(VALUE_DTYPE)
    k = dense.shape[1]
    ctx.record(
        "spmm",
        bytes_read=vals.nbytes + matrix.nnz * (_ITEM + k * _VAL),
        bytes_written=result.nbytes,
        flops=2.0 * matrix.nnz * k,
        tasks=max(matrix.nnz, 1),
    )
    return result[:, 0] if squeeze else result


def sddmm_dot(
    matrix: SparseFormat,
    row_feats: np.ndarray,
    col_feats: np.ndarray,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> SparseFormat:
    """Sampled dense-dense product: per-edge ``<row_feats[u], col_feats[v]>``.

    This is the kernel behind PASS's attention terms, where each edge's
    bias is the inner product of projected endpoint features.
    """
    row_feats = np.asarray(row_feats, dtype=VALUE_DTYPE)
    col_feats = np.asarray(col_feats, dtype=VALUE_DTYPE)
    if row_feats.shape[0] != matrix.shape[0]:
        raise ShapeError("row_feats first dim must equal row count")
    if col_feats.shape[0] != matrix.shape[1]:
        raise ShapeError("col_feats first dim must equal column count")
    if row_feats.shape[1:] != col_feats.shape[1:]:
        raise ShapeError("row/col feature dims differ")
    rows, cols = edge_endpoints(matrix, ctx)
    out_vals = np.einsum(
        "ij,ij->i", row_feats[rows], col_feats[cols], dtype=np.float64
    ).astype(VALUE_DTYPE)
    k = row_feats.shape[1] if row_feats.ndim > 1 else 1
    ctx.record(
        "sddmm_dot",
        bytes_read=matrix.nnz * (2 * _ITEM + 2 * k * _VAL),
        bytes_written=out_vals.nbytes,
        flops=2.0 * matrix.nnz * k,
        tasks=max(matrix.nnz, 1),
    )
    return _with_values(matrix, out_vals)


# ---------------------------------------------------------------------------
# Fused kernels (Section 4.2)
# ---------------------------------------------------------------------------
def fused_map_chain(
    matrix: SparseFormat,
    steps: Sequence[tuple[str, object, int | None]],
    ctx: ExecutionContext = NULL_CONTEXT,
) -> SparseFormat:
    """Edge-Map fusion: apply a chain of edge maps in one kernel.

    ``steps`` is a sequence of ``(op, operand, axis)`` descriptors where
    ``operand`` is a scalar (axis None), a broadcast vector (axis 0/1),
    a matrix with identical topology (axis ``-1``), or ``None`` for unary
    ops.  The fused kernel reads the input values once and writes only the
    final result — intermediates never hit global memory.
    """
    vals = edge_values(matrix).astype(np.float64)
    rows = cols = None
    extra_reads = 0.0
    for op, operand, axis in steps:
        if operand is None:
            vals = _UNARY_OPS[op](vals)
        elif axis is None:
            vals = _BINARY_OPS[op](vals, float(operand))  # type: ignore[arg-type]
        elif axis == -1:
            other = operand
            assert isinstance(other, (COO, CSR, CSC))
            vals = _BINARY_OPS[op](vals, edge_values(other).astype(np.float64))
            extra_reads += other.nnz * _VAL
        else:
            vector = np.asarray(operand, dtype=np.float64)
            if rows is None:
                rows, cols = edge_endpoints(matrix, ctx)
            idx = rows if axis == 0 else cols
            vals = _BINARY_OPS[op](vals, vector[idx])
            extra_reads += matrix.nnz * (_ITEM + _VAL)
    with np.errstate(over="ignore"):
        out_vals = vals.astype(VALUE_DTYPE)
    ctx.record(
        "fused_edge_map",
        bytes_read=matrix.nnz * _VAL + extra_reads,
        bytes_written=out_vals.nbytes,
        flops=matrix.nnz * max(len(steps), 1),
        tasks=max(matrix.nnz, 1),
    )
    return _with_values(matrix, out_vals)


def fused_map_reduce(
    matrix: SparseFormat,
    steps: Sequence[tuple[str, object, int | None]],
    reduce_op: str,
    reduce_axis: int,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> np.ndarray:
    """Edge-MapReduce fusion: map chain + reduction in one kernel.

    The mapped edge values are consumed directly by the segmented
    reduction; only the per-node output vector is written to memory.  This
    implements the LADIES ``(sub_A ** 2).sum(axis=0)`` fusion shown in
    Figure 5(c) of the paper.
    """
    mapped = fused_map_chain(matrix, steps, NULL_CONTEXT)
    if reduce_axis == 0:
        out = reduce_rows(mapped, reduce_op, NULL_CONTEXT)
        out_len = matrix.shape[0]
    elif reduce_axis == 1:
        out = reduce_cols(mapped, reduce_op, NULL_CONTEXT)
        out_len = matrix.shape[1]
    else:
        raise ShapeError(f"reduce axis must be 0 or 1, got {reduce_axis}")
    ctx.record(
        "fused_edge_map_reduce",
        bytes_read=matrix.nnz * (_VAL + _ITEM),
        bytes_written=out_len * _VAL,
        flops=matrix.nnz * (len(steps) + 1.0),
        tasks=max(matrix.nnz, 1),
    )
    return out
