"""Conversions between COO, CSR, and CSC storage.

Format conversion is a first-class cost in gSampler's layout-selection
pass (Table 5 reports e.g. CSC→COO at 0.36 ms vs COO→CSR at 2.40 ms on
Ogbn-Products).  The asymmetry is real: decompressing an indptr into
per-edge indices is a single ``repeat`` (cheap), while building an indptr
requires a sort or histogram over all edges (expensive).  The kernels here
report workloads that reproduce that asymmetry through the simulator.

All conversions permute ``values`` and ``edge_ids`` together with the
topology so per-edge payloads survive round trips.
"""

from __future__ import annotations

import numpy as np

from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import FormatError
from repro.sparse.formats import COO, CSC, CSR, INDEX_DTYPE, SparseFormat


def _take(arr: np.ndarray | None, order: np.ndarray) -> np.ndarray | None:
    return None if arr is None else arr[order]


def coo_to_csr(coo: COO, ctx: ExecutionContext = NULL_CONTEXT) -> CSR:
    """Sort the edge list by row and compress into CSR."""
    order = np.argsort(coo.rows, kind="stable")
    rows = coo.rows[order]
    counts = np.bincount(rows, minlength=coo.shape[0])
    indptr = np.zeros(coo.shape[0] + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    out = CSR(
        indptr=indptr,
        cols=coo.cols[order],
        values=_take(coo.values, order),
        shape=coo.shape,
        edge_ids=_take(coo.edge_ids, order),
    )
    # A sort-based compression touches every edge O(log E) times.
    log_e = max(1.0, np.log2(max(coo.nnz, 2)))
    ctx.record(
        "convert_coo_to_csr",
        bytes_read=coo.nbytes() * log_e,
        bytes_written=out.nbytes(),
        flops=coo.nnz * log_e,
        tasks=coo.nnz,
    )
    return out


def coo_to_csc(coo: COO, ctx: ExecutionContext = NULL_CONTEXT) -> CSC:
    """Sort the edge list by column and compress into CSC."""
    order = np.argsort(coo.cols, kind="stable")
    cols = coo.cols[order]
    counts = np.bincount(cols, minlength=coo.shape[1])
    indptr = np.zeros(coo.shape[1] + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    out = CSC(
        indptr=indptr,
        rows=coo.rows[order],
        values=_take(coo.values, order),
        shape=coo.shape,
        edge_ids=_take(coo.edge_ids, order),
    )
    log_e = max(1.0, np.log2(max(coo.nnz, 2)))
    ctx.record(
        "convert_coo_to_csc",
        bytes_read=coo.nbytes() * log_e,
        bytes_written=out.nbytes(),
        flops=coo.nnz * log_e,
        tasks=coo.nnz,
    )
    return out


def csr_to_coo(csr: CSR, ctx: ExecutionContext = NULL_CONTEXT) -> COO:
    """Decompress the row pointer into per-edge row indices (cheap)."""
    out = COO(
        rows=csr.expand_rows(),
        cols=csr.cols,
        values=csr.values,
        shape=csr.shape,
        edge_ids=csr.edge_ids,
    )
    ctx.record(
        "convert_csr_to_coo",
        bytes_read=csr.indptr.nbytes,
        bytes_written=out.rows.nbytes,
        flops=csr.nnz,
        tasks=csr.nnz,
    )
    return out


def csc_to_coo(csc: CSC, ctx: ExecutionContext = NULL_CONTEXT) -> COO:
    """Decompress the column pointer into per-edge column indices (cheap)."""
    out = COO(
        rows=csc.rows,
        cols=csc.expand_cols(),
        values=csc.values,
        shape=csc.shape,
        edge_ids=csc.edge_ids,
    )
    ctx.record(
        "convert_csc_to_coo",
        bytes_read=csc.indptr.nbytes,
        bytes_written=out.cols.nbytes,
        flops=csc.nnz,
        tasks=csc.nnz,
    )
    return out


def csr_to_csc(csr: CSR, ctx: ExecutionContext = NULL_CONTEXT) -> CSC:
    """Transpose compression: decompress then re-sort by column."""
    return coo_to_csc(csr_to_coo(csr, ctx), ctx)


def csc_to_csr(csc: CSC, ctx: ExecutionContext = NULL_CONTEXT) -> CSR:
    """Transpose compression: decompress then re-sort by row."""
    return coo_to_csr(csc_to_coo(csc, ctx), ctx)


_CONVERTERS = {
    ("coo", "csr"): coo_to_csr,
    ("coo", "csc"): coo_to_csc,
    ("csr", "coo"): csr_to_coo,
    ("csc", "coo"): csc_to_coo,
    ("csr", "csc"): csr_to_csc,
    ("csc", "csr"): csc_to_csr,
}


def convert(
    matrix: SparseFormat, layout: str, ctx: ExecutionContext = NULL_CONTEXT
) -> SparseFormat:
    """Convert ``matrix`` to ``layout`` (no-op when already there)."""
    if matrix.layout == layout:
        return matrix
    try:
        fn = _CONVERTERS[(matrix.layout, layout)]
    except KeyError:
        raise FormatError(
            f"no conversion from {matrix.layout!r} to {layout!r}"
        ) from None
    return fn(matrix, ctx)


def to_coo(matrix: SparseFormat, ctx: ExecutionContext = NULL_CONTEXT) -> COO:
    """Convenience wrapper returning a COO view of any format."""
    result = convert(matrix, "coo", ctx)
    assert isinstance(result, COO)
    return result


def to_csr(matrix: SparseFormat, ctx: ExecutionContext = NULL_CONTEXT) -> CSR:
    """Convenience wrapper returning a CSR view of any format."""
    result = convert(matrix, "csr", ctx)
    assert isinstance(result, CSR)
    return result


def to_csc(matrix: SparseFormat, ctx: ExecutionContext = NULL_CONTEXT) -> CSC:
    """Convenience wrapper returning a CSC view of any format."""
    result = convert(matrix, "csc", ctx)
    assert isinstance(result, CSC)
    return result
