"""Graph compaction: isolated-node removal and id relabeling.

The extract step keeps the original row dimension, so ``A[:, frontiers]``
can carry a huge number of isolated row nodes that connect to no frontier
(Section 4.3).  Compaction removes them, shrinking every downstream kernel
— at the price of a global-to-local id conversion pass.  The layout
selection pass weighs that trade-off; this module supplies the mechanism.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import FormatError
from repro.sparse.formats import (
    COO,
    CSC,
    CSR,
    INDEX_DTYPE,
    SparseFormat,
)
from repro.sparse import kernels


@dataclasses.dataclass
class CompactResult:
    """A compacted matrix plus the local→global id map for each axis.

    ``row_ids[i]`` is the original row index of compacted row ``i``;
    ``col_ids`` likewise (``None`` when the axis was left untouched).
    """

    matrix: SparseFormat
    row_ids: np.ndarray | None
    col_ids: np.ndarray | None


def occupied_rows(
    matrix: SparseFormat, ctx: ExecutionContext = NULL_CONTEXT
) -> np.ndarray:
    """Sorted original indices of rows that carry at least one edge."""
    if isinstance(matrix, CSR):
        out = np.flatnonzero(matrix.row_degrees() > 0).astype(INDEX_DTYPE)
        ctx.record(
            "occupied_rows",
            bytes_read=matrix.indptr.nbytes,
            bytes_written=out.nbytes,
            flops=matrix.shape[0],
            tasks=max(matrix.shape[0], 1),
        )
        return out
    rows, _ = kernels.edge_endpoints(matrix, ctx)
    out = np.unique(rows)
    ctx.record(
        "occupied_rows",
        bytes_read=rows.nbytes,
        bytes_written=out.nbytes,
        flops=max(matrix.nnz, 1) * max(1.0, np.log2(max(matrix.nnz, 2))),
        tasks=max(matrix.nnz, 1),
    )
    return out


def occupied_cols(
    matrix: SparseFormat, ctx: ExecutionContext = NULL_CONTEXT
) -> np.ndarray:
    """Sorted original indices of columns that carry at least one edge."""
    if isinstance(matrix, CSC):
        out = np.flatnonzero(matrix.col_degrees() > 0).astype(INDEX_DTYPE)
        ctx.record(
            "occupied_cols",
            bytes_read=matrix.indptr.nbytes,
            bytes_written=out.nbytes,
            flops=matrix.shape[1],
            tasks=max(matrix.shape[1], 1),
        )
        return out
    _, cols = kernels.edge_endpoints(matrix, ctx)
    out = np.unique(cols)
    ctx.record(
        "occupied_cols",
        bytes_read=cols.nbytes,
        bytes_written=out.nbytes,
        flops=max(matrix.nnz, 1) * max(1.0, np.log2(max(matrix.nnz, 2))),
        tasks=max(matrix.nnz, 1),
    )
    return out


def compact_rows(
    matrix: SparseFormat,
    ctx: ExecutionContext = NULL_CONTEXT,
    keep_rows: np.ndarray | None = None,
) -> CompactResult:
    """Drop isolated rows, renumbering survivors to ``0..R-1``.

    ``keep_rows`` overrides the survivor set (used by collective_sample,
    where the rows to keep come from the sampler rather than occupancy).
    """
    rows_to_keep = occupied_rows(matrix, ctx) if keep_rows is None else keep_rows
    rows_to_keep = np.asarray(rows_to_keep, dtype=INDEX_DTYPE)
    new_matrix = _relabel_rows(matrix, rows_to_keep, ctx)
    return CompactResult(matrix=new_matrix, row_ids=rows_to_keep, col_ids=None)


def compact_cols(
    matrix: SparseFormat,
    ctx: ExecutionContext = NULL_CONTEXT,
    keep_cols: np.ndarray | None = None,
) -> CompactResult:
    """Drop isolated columns, renumbering survivors to ``0..C-1``."""
    cols_to_keep = occupied_cols(matrix, ctx) if keep_cols is None else keep_cols
    cols_to_keep = np.asarray(cols_to_keep, dtype=INDEX_DTYPE)
    new_matrix = _relabel_cols(matrix, cols_to_keep, ctx)
    return CompactResult(matrix=new_matrix, row_ids=None, col_ids=cols_to_keep)


def _relabel_rows(
    matrix: SparseFormat, keep: np.ndarray, ctx: ExecutionContext
) -> SparseFormat:
    lut = np.full(matrix.shape[0], -1, dtype=INDEX_DTYPE)
    lut[keep] = np.arange(len(keep), dtype=INDEX_DTYPE)
    if isinstance(matrix, COO):
        new_rows = lut[matrix.rows]
        mask = new_rows >= 0
        out: SparseFormat = COO(
            rows=new_rows[mask],
            cols=matrix.cols[mask],
            values=None if matrix.values is None else matrix.values[mask],
            shape=(len(keep), matrix.shape[1]),
            edge_ids=None if matrix.edge_ids is None else matrix.edge_ids[mask],
        )
    elif isinstance(matrix, CSC):
        new_rows = lut[matrix.rows]
        mask = new_rows >= 0
        kept_per_col = _kept_per_segment(mask, matrix.indptr)
        indptr = np.zeros(matrix.shape[1] + 1, dtype=INDEX_DTYPE)
        np.cumsum(kept_per_col, out=indptr[1:])
        out = CSC(
            indptr=indptr,
            rows=new_rows[mask],
            values=None if matrix.values is None else matrix.values[mask],
            shape=(len(keep), matrix.shape[1]),
            edge_ids=None if matrix.edge_ids is None else matrix.edge_ids[mask],
        )
    elif isinstance(matrix, CSR):
        sliced = kernels.slice_rows(matrix, keep, ctx)
        assert isinstance(sliced, CSR)
        out = sliced
        return out
    else:
        raise FormatError(f"unknown sparse container {type(matrix).__name__}")
    ctx.record(
        "compact_rows",
        bytes_read=matrix.nbytes() + keep.nbytes,
        bytes_written=out.nbytes() + matrix.shape[0] * _id_bytes(),
        flops=matrix.nnz + matrix.shape[0],
        tasks=max(matrix.nnz, 1),
    )
    return out


def _relabel_cols(
    matrix: SparseFormat, keep: np.ndarray, ctx: ExecutionContext
) -> SparseFormat:
    lut = np.full(matrix.shape[1], -1, dtype=INDEX_DTYPE)
    lut[keep] = np.arange(len(keep), dtype=INDEX_DTYPE)
    if isinstance(matrix, COO):
        new_cols = lut[matrix.cols]
        mask = new_cols >= 0
        out: SparseFormat = COO(
            rows=matrix.rows[mask],
            cols=new_cols[mask],
            values=None if matrix.values is None else matrix.values[mask],
            shape=(matrix.shape[0], len(keep)),
            edge_ids=None if matrix.edge_ids is None else matrix.edge_ids[mask],
        )
    elif isinstance(matrix, CSR):
        new_cols = lut[matrix.cols]
        mask = new_cols >= 0
        kept_per_row = _kept_per_segment(mask, matrix.indptr)
        indptr = np.zeros(matrix.shape[0] + 1, dtype=INDEX_DTYPE)
        np.cumsum(kept_per_row, out=indptr[1:])
        out = CSR(
            indptr=indptr,
            cols=new_cols[mask],
            values=None if matrix.values is None else matrix.values[mask],
            shape=(matrix.shape[0], len(keep)),
            edge_ids=None if matrix.edge_ids is None else matrix.edge_ids[mask],
        )
    elif isinstance(matrix, CSC):
        sliced = kernels.slice_columns(matrix, keep, ctx)
        assert isinstance(sliced, CSC)
        return sliced
    else:
        raise FormatError(f"unknown sparse container {type(matrix).__name__}")
    ctx.record(
        "compact_cols",
        bytes_read=matrix.nbytes() + keep.nbytes,
        bytes_written=out.nbytes() + matrix.shape[1] * _id_bytes(),
        flops=matrix.nnz + matrix.shape[1],
        tasks=max(matrix.nnz, 1),
    )
    return out


def _kept_per_segment(mask: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Count of surviving edges per indptr segment."""
    csum = np.zeros(len(mask) + 1, dtype=INDEX_DTYPE)
    np.cumsum(mask, out=csum[1:])
    return csum[indptr[1:]] - csum[indptr[:-1]]


def _id_bytes() -> int:
    return INDEX_DTYPE().itemsize
