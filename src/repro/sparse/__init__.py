"""Sparse-matrix substrate: storage formats, conversions, and kernels.

This package is the layer a CUDA library would occupy in the original
gSampler: COO/CSR/CSC containers, format conversions with realistic
asymmetric costs, slicing/broadcast/reduce/SpMM kernels, fused kernels for
the Edge-Map and Edge-MapReduce fusion rules, and graph compaction.
Everything above it (the matrix API, the IR, the algorithms) is built from
these primitives.
"""

from repro.sparse.compact import (
    CompactResult,
    compact_cols,
    compact_rows,
    occupied_cols,
    occupied_rows,
)
from repro.sparse.convert import convert, to_coo, to_csc, to_csr
from repro.sparse.formats import (
    COO,
    CSC,
    CSR,
    INDEX_DTYPE,
    LAYOUTS,
    VALUE_DTYPE,
    SparseFormat,
    as_index_array,
    as_value_array,
    edge_ids_or_identity,
    edge_values,
    gather_ranges,
)
from repro.sparse.kernels import (
    edge_endpoints,
    fused_map_chain,
    fused_map_reduce,
    map_edges_broadcast,
    map_edges_combine,
    map_edges_scalar,
    map_edges_unary,
    reduce_cols,
    reduce_rows,
    sddmm_dot,
    slice_columns,
    slice_rows,
    spmm,
)

__all__ = [
    "COO",
    "CSC",
    "CSR",
    "INDEX_DTYPE",
    "LAYOUTS",
    "VALUE_DTYPE",
    "CompactResult",
    "SparseFormat",
    "as_index_array",
    "as_value_array",
    "compact_cols",
    "compact_rows",
    "convert",
    "edge_endpoints",
    "edge_ids_or_identity",
    "edge_values",
    "fused_map_chain",
    "fused_map_reduce",
    "gather_ranges",
    "map_edges_broadcast",
    "map_edges_combine",
    "map_edges_scalar",
    "map_edges_unary",
    "occupied_cols",
    "occupied_rows",
    "reduce_cols",
    "reduce_rows",
    "sddmm_dot",
    "slice_columns",
    "slice_rows",
    "spmm",
    "to_coo",
    "to_csc",
    "to_csr",
]
