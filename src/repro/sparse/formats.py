"""Sparse storage formats: COO, CSR, and CSC.

gSampler stores graphs and intermediate matrices in one of three sparse
layouts (Section 4.3): compressed sparse row (CSR, out-neighbors of each
node consecutive), compressed sparse column (CSC, in-neighbors
consecutive), and coordinate list (COO, a flat edge list).  Different
operators prefer different layouts — Table 5 of the paper quantifies this
for LADIES — and the layout-selection pass chooses among them.

A matrix entry ``A[u, v]`` is an edge ``u -> v``; the row of ``v`` holds
its out-going edges and the column of ``v`` its in-coming edges, matching
the paper's convention.  All formats carry:

* ``values`` — per-edge weights, or ``None`` for an unweighted graph
  (implicitly all ones),
* ``edge_ids`` — per-edge ids into the *original* graph's edge array, or
  ``None`` for the identity.  Conversions and slices permute these along
  with the values, so per-edge features stay addressable and the
  pre-processing pass can substitute pre-computed edge data.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import FormatError, ShapeError

#: dtype used for all index arrays.
INDEX_DTYPE = np.int64
#: dtype used for all edge values.
VALUE_DTYPE = np.float32

#: Canonical layout names, in the order used by cost tables.
LAYOUTS = ("csc", "coo", "csr")


def as_index_array(data: object) -> np.ndarray:
    """Coerce ``data`` to a 1-D int64 index array (copying only if needed)."""
    arr = np.asarray(data, dtype=INDEX_DTYPE)
    if arr.ndim != 1:
        raise ShapeError(f"index array must be 1-D, got shape {arr.shape}")
    return arr


def as_value_array(data: object) -> np.ndarray:
    """Coerce ``data`` to a 1-D float32 value array."""
    arr = np.asarray(data, dtype=VALUE_DTYPE)
    if arr.ndim != 1:
        raise ShapeError(f"value array must be 1-D, got shape {arr.shape}")
    return arr


def _check_shape(shape: tuple[int, int]) -> tuple[int, int]:
    if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
        raise ShapeError(f"matrix shape must be two non-negative ints, got {shape}")
    return (int(shape[0]), int(shape[1]))


@dataclasses.dataclass
class COO:
    """Coordinate-list storage: parallel ``rows``/``cols`` edge arrays."""

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray | None
    shape: tuple[int, int]
    edge_ids: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.rows = as_index_array(self.rows)
        self.cols = as_index_array(self.cols)
        self.shape = _check_shape(self.shape)
        if self.rows.shape != self.cols.shape:
            raise ShapeError("rows and cols must have equal length")
        if self.values is not None:
            self.values = as_value_array(self.values)
            if len(self.values) != len(self.rows):
                raise ShapeError("values length must equal nnz")
        if self.edge_ids is not None:
            self.edge_ids = as_index_array(self.edge_ids)
            if len(self.edge_ids) != len(self.rows):
                raise ShapeError("edge_ids length must equal nnz")
        if len(self.rows) and (
            self.rows.max(initial=-1) >= self.shape[0]
            or self.cols.max(initial=-1) >= self.shape[1]
        ):
            raise ShapeError("edge endpoint out of bounds for shape")

    @property
    def nnz(self) -> int:
        return len(self.rows)

    @property
    def layout(self) -> str:
        return "coo"

    def nbytes(self) -> int:
        """Bytes of device storage this container occupies."""
        total = self.rows.nbytes + self.cols.nbytes
        if self.values is not None:
            total += self.values.nbytes
        if self.edge_ids is not None:
            total += self.edge_ids.nbytes
        return total


@dataclasses.dataclass
class CSR:
    """Compressed sparse row: per-row slices of column indices."""

    indptr: np.ndarray
    cols: np.ndarray
    values: np.ndarray | None
    shape: tuple[int, int]
    edge_ids: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.indptr = as_index_array(self.indptr)
        self.cols = as_index_array(self.cols)
        self.shape = _check_shape(self.shape)
        if len(self.indptr) != self.shape[0] + 1:
            raise ShapeError(
                f"indptr length {len(self.indptr)} != rows + 1 = {self.shape[0] + 1}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.cols):
            raise FormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.values is not None:
            self.values = as_value_array(self.values)
            if len(self.values) != len(self.cols):
                raise ShapeError("values length must equal nnz")
        if self.edge_ids is not None:
            self.edge_ids = as_index_array(self.edge_ids)
            if len(self.edge_ids) != len(self.cols):
                raise ShapeError("edge_ids length must equal nnz")

    @property
    def nnz(self) -> int:
        return len(self.cols)

    @property
    def layout(self) -> str:
        return "csr"

    def row_degrees(self) -> np.ndarray:
        """Edge count of every row."""
        return np.diff(self.indptr)

    def expand_rows(self) -> np.ndarray:
        """Per-edge row indices (the COO ``rows`` array for this layout)."""
        return np.repeat(
            np.arange(self.shape[0], dtype=INDEX_DTYPE), self.row_degrees()
        )

    def nbytes(self) -> int:
        total = self.indptr.nbytes + self.cols.nbytes
        if self.values is not None:
            total += self.values.nbytes
        if self.edge_ids is not None:
            total += self.edge_ids.nbytes
        return total


@dataclasses.dataclass
class CSC:
    """Compressed sparse column: per-column slices of row indices."""

    indptr: np.ndarray
    rows: np.ndarray
    values: np.ndarray | None
    shape: tuple[int, int]
    edge_ids: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.indptr = as_index_array(self.indptr)
        self.rows = as_index_array(self.rows)
        self.shape = _check_shape(self.shape)
        if len(self.indptr) != self.shape[1] + 1:
            raise ShapeError(
                f"indptr length {len(self.indptr)} != cols + 1 = {self.shape[1] + 1}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.rows):
            raise FormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.values is not None:
            self.values = as_value_array(self.values)
            if len(self.values) != len(self.rows):
                raise ShapeError("values length must equal nnz")
        if self.edge_ids is not None:
            self.edge_ids = as_index_array(self.edge_ids)
            if len(self.edge_ids) != len(self.rows):
                raise ShapeError("edge_ids length must equal nnz")

    @property
    def nnz(self) -> int:
        return len(self.rows)

    @property
    def layout(self) -> str:
        return "csc"

    def col_degrees(self) -> np.ndarray:
        """Edge count of every column (in-degree of each column node)."""
        return np.diff(self.indptr)

    def expand_cols(self) -> np.ndarray:
        """Per-edge column indices (the COO ``cols`` array)."""
        return np.repeat(
            np.arange(self.shape[1], dtype=INDEX_DTYPE), self.col_degrees()
        )

    def nbytes(self) -> int:
        total = self.indptr.nbytes + self.rows.nbytes
        if self.values is not None:
            total += self.values.nbytes
        if self.edge_ids is not None:
            total += self.edge_ids.nbytes
        return total


#: Union of the three storage containers.
SparseFormat = COO | CSR | CSC


def edge_values(matrix: SparseFormat) -> np.ndarray:
    """The per-edge value array, materializing implicit ones if needed."""
    if matrix.values is not None:
        return matrix.values
    return np.ones(matrix.nnz, dtype=VALUE_DTYPE)


def edge_ids_or_identity(matrix: SparseFormat) -> np.ndarray:
    """The per-edge id array, materializing the identity if needed."""
    if matrix.edge_ids is not None:
        return matrix.edge_ids
    return np.arange(matrix.nnz, dtype=INDEX_DTYPE)


def gather_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + l)`` for every (start, length) pair.

    This is the core gather primitive behind CSC/CSR slicing: given the
    start offset and length of each selected row/column, it produces the
    flat positions of their edges without a Python loop.
    """
    starts = as_index_array(starts)
    lengths = as_index_array(lengths)
    if starts.shape != lengths.shape:
        raise ShapeError("starts and lengths must have equal length")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    # Standard vectorized "ragged arange": offsets within each segment are
    # produced by subtracting the segment-start positions from a global
    # arange.
    out = np.ones(total, dtype=INDEX_DTYPE)
    seg_starts = np.zeros(len(lengths), dtype=INDEX_DTYPE)
    np.cumsum(lengths[:-1], out=seg_starts[1:])
    out[seg_starts[lengths > 0]] = starts[lengths > 0]
    nonempty = np.flatnonzero(lengths > 0)
    if len(nonempty) > 1:
        prev = nonempty[:-1]
        cur = nonempty[1:]
        out[seg_starts[cur]] = starts[cur] - (starts[prev] + lengths[prev]) + 1
    return np.cumsum(out)
