"""Epoch-level measurement harness used by every benchmark.

The paper's unit of measurement is the *sampling time for an epoch*: one
pass over all frontier nodes in mini-batches (Section 5.1), averaged over
several epochs after a warm-up.  This module runs a (system, algorithm,
dataset, device) cell and returns both the simulated device time (the
headline metric, standing in for the paper's GPU wall clock) and host
wall time, plus launch/memory/occupancy statistics for Tables 5 and 9.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time

import numpy as np

from repro.baselines import BaselineSystem, GSamplerSystem, make_system
from repro.core import minibatches, new_rng
from repro.datasets import Dataset, load_dataset
from repro.device import DeviceSpec, ExecutionContext, get_device
from repro.errors import UnsupportedAlgorithmError
from repro.profile.spans import Profiler

#: Default mini-batch size (the DGL/PyG example configuration).
DEFAULT_BATCH_SIZE = 1024
#: Default super-batch multiple used by gSampler pipelines that allow it.
DEFAULT_SUPERBATCH = 4


@dataclasses.dataclass
class EpochStats:
    """Measured statistics for one epoch of sampling."""

    system: str
    algorithm: str
    dataset: str
    device: str
    sim_seconds: float
    wall_seconds: float
    launches: int
    peak_memory_bytes: int
    sm_percent: float
    num_batches: int

    def per_batch_ms(self) -> float:
        return 1e3 * self.sim_seconds / max(self.num_batches, 1)


def run_sampling_epoch(
    system: BaselineSystem,
    algorithm: str,
    dataset: Dataset,
    *,
    device: DeviceSpec,
    batch_size: int = DEFAULT_BATCH_SIZE,
    superbatch: int = DEFAULT_SUPERBATCH,
    seed: int = 0,
    max_batches: int | None = None,
    profiler: Profiler | None = None,
) -> EpochStats:
    """Run one sampling epoch and collect its statistics.

    Raises :class:`UnsupportedAlgorithmError` for N/A cells, mirroring
    the missing bars of Figures 7/8.  With ``profiler`` given, the run
    is traced as nested spans (``compile → pass:*`` during pipeline
    construction, ``epoch → batch → kernel:*`` during sampling) on both
    the host and simulated clocks; measured statistics are unaffected.
    """
    system.check_support(algorithm, dataset)
    rng = new_rng(seed)
    seeds = dataset.train_ids
    batches = minibatches(seeds, batch_size, shuffle=True, rng=rng)
    if max_batches is not None:
        batches = batches[:max_batches]

    def span(name: str, category: str, **attrs: object):
        if profiler is None:
            return contextlib.nullcontext()
        return profiler.span(name, category, **attrs)

    activation = (
        profiler.activate() if profiler is not None else contextlib.nullcontext()
    )
    with activation:
        pipeline = system.build_pipeline(algorithm, dataset, batches[0])
        ctx = ExecutionContext(device, graph_on_device=dataset.graph_on_device)
        if profiler is not None:
            profiler.attach(ctx)
        # Measurement starts here: restart peak tracking so pool peaks
        # reached during pipeline construction / warmup probes against a
        # shared pool cannot leak into the epoch's memory column.
        ctx.reset(include_peak=True)
        use_superbatch = (
            isinstance(system, GSamplerSystem)
            and system.config.superbatch
            and pipeline.supports_superbatch
            and superbatch > 1
        )
        start = time.perf_counter()
        with span(
            "epoch",
            "epoch",
            system=system.name,
            algorithm=algorithm,
            dataset=dataset.name,
            device=device.name,
        ):
            if use_superbatch:
                for index, lo in enumerate(range(0, len(batches), superbatch)):
                    group = batches[lo : lo + superbatch]
                    with span(f"batch[{index}]", "batch", size=len(group)):
                        if len(group) == 1:
                            pipeline.sample_batch(group[0], ctx=ctx, rng=rng)
                        else:
                            pipeline.sample_superbatch(group, ctx=ctx, rng=rng)
            else:
                for index, batch in enumerate(batches):
                    with span(f"batch[{index}]", "batch", size=len(batch)):
                        pipeline.sample_batch(batch, ctx=ctx, rng=rng)
        wall = time.perf_counter() - start
    return EpochStats(
        system=system.name,
        algorithm=algorithm,
        dataset=dataset.name,
        device=device.name,
        sim_seconds=ctx.elapsed,
        wall_seconds=wall,
        launches=ctx.launch_count(),
        peak_memory_bytes=ctx.memory.peak_bytes,
        sm_percent=ctx.sm_utilization(),
        num_batches=len(batches),
    )


def measure_cell(
    system_name: str,
    algorithm: str,
    dataset_name: str,
    *,
    device_name: str = "v100",
    batch_size: int = DEFAULT_BATCH_SIZE,
    scale: float = 1.0,
    seed: int = 0,
    max_batches: int | None = None,
    superbatch: int = DEFAULT_SUPERBATCH,
    profiler: Profiler | None = None,
) -> EpochStats | None:
    """One cell of a comparison table; ``None`` marks an N/A cell."""
    dataset = load_dataset(dataset_name, scale=scale)
    system = make_system(system_name)
    device = get_device(
        "cpu" if system.device_kind == "cpu" else device_name
    )
    try:
        return run_sampling_epoch(
            system,
            algorithm,
            dataset,
            device=device,
            batch_size=batch_size,
            seed=seed,
            max_batches=max_batches,
            superbatch=superbatch,
            profiler=profiler,
        )
    except UnsupportedAlgorithmError:
        return None


def normalize(rows: dict[str, float], reference: str) -> dict[str, float]:
    """Normalize a {system: seconds} row so ``reference`` is 1.0."""
    ref = rows[reference]
    return {k: (v / ref if ref > 0 else float("inf")) for k, v in rows.items()}


def speedup_over_best_baseline(
    rows: dict[str, float | None], reference: str
) -> float:
    """Paper Table 7 metric: reference time vs the best *other* system."""
    others = [v for k, v in rows.items() if k != reference and v is not None]
    if not others or rows.get(reference) in (None, 0):
        return float("nan")
    return min(others) / rows[reference]  # type: ignore[operator]


def format_table(
    header: list[str], rows: list[list[object]], title: str = ""
) -> str:
    """Plain-text table used by every benchmark's report output."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
