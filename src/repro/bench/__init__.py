"""Benchmark harness: epoch measurement and table formatting."""

from repro.bench.harness import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_SUPERBATCH,
    EpochStats,
    format_table,
    measure_cell,
    normalize,
    run_sampling_epoch,
    speedup_over_best_baseline,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_SUPERBATCH",
    "EpochStats",
    "format_table",
    "measure_cell",
    "normalize",
    "run_sampling_epoch",
    "speedup_over_best_baseline",
]
