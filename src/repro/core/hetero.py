"""Heterogeneous graphs: one sparse matrix per edge type (paper §4.5).

gSampler handles heterogeneous graphs by modeling each edge type as its
own adjacency matrix and running the exact same ECSF workflow per type —
no new operators needed.  This module provides:

* :class:`HeteroGraph` — a typed collection of :class:`Matrix` relations
  with node-type bookkeeping;
* per-relation extract/select helpers, so e.g. HetGNN's typed top-k or a
  typed GraphSAGE simply loops relations;
* metapath random walks (PinSAGE's "random walks following a meta-path"),
  where each step follows the matrix of the next relation in the path.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core import random as rnd
from repro.core.matrix import Matrix
from repro.core.sampling import uniform_walk_step
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import GSamplerError, ShapeError
from repro.sparse import INDEX_DTYPE

#: A relation name: (source node type, edge name, destination node type).
Relation = tuple[str, str, str]


class HeteroGraph:
    """A heterogeneous graph as a dict of per-relation matrices.

    Each relation ``(src_type, name, dst_type)`` owns a ``Matrix`` whose
    entry ``A[u, v]`` is an edge ``u -> v`` with ``u`` in the source
    type's id space and ``v`` in the destination type's.  Node ids are
    *per-type* (each type counts from zero), matching how DGL and the
    original gSampler store typed graphs.
    """

    def __init__(
        self,
        num_nodes: Mapping[str, int],
        relations: Mapping[Relation, Matrix],
    ) -> None:
        self.num_nodes = dict(num_nodes)
        self.relations = dict(relations)
        for (src_t, name, dst_t), matrix in self.relations.items():
            if src_t not in self.num_nodes or dst_t not in self.num_nodes:
                raise ShapeError(
                    f"relation ({src_t}, {name}, {dst_t}) references an "
                    "unknown node type"
                )
            expected = (self.num_nodes[src_t], self.num_nodes[dst_t])
            if matrix.shape != expected:
                raise ShapeError(
                    f"relation ({src_t}, {name}, {dst_t}) has shape "
                    f"{matrix.shape}, expected {expected}"
                )

    # ------------------------------------------------------------------
    @property
    def node_types(self) -> list[str]:
        return sorted(self.num_nodes)

    @property
    def edge_types(self) -> list[Relation]:
        return sorted(self.relations)

    def matrix(self, relation: Relation) -> Matrix:
        try:
            return self.relations[relation]
        except KeyError:
            raise GSamplerError(
                f"unknown relation {relation!r}; have {self.edge_types}"
            ) from None

    def relations_into(self, dst_type: str) -> list[Relation]:
        """Relations whose destination is ``dst_type`` (what a typed
        frontier of that type samples from)."""
        return [r for r in self.edge_types if r[2] == dst_type]

    # ------------------------------------------------------------------
    def sample_neighbors(
        self,
        dst_type: str,
        frontiers: np.ndarray,
        fanout_per_relation: int,
        *,
        rng: np.random.Generator | None = None,
        ctx: ExecutionContext = NULL_CONTEXT,
    ) -> dict[Relation, Matrix]:
        """Typed neighbor sampling: per incoming relation, a fanout draw.

        This is the heterogeneous GraphSAGE layer: every relation into
        ``dst_type`` is extracted and individually sampled with the same
        homogeneous operators, one matrix per relation — exactly the
        workflow equivalence the paper claims for typed graphs.
        """
        rng = rng if rng is not None else rnd.new_rng()
        out: dict[Relation, Matrix] = {}
        for relation in self.relations_into(dst_type):
            base = self.matrix(relation)
            bound = Matrix(
                base.any_storage(), ctx=ctx, is_base_graph=base.is_base_graph
            )
            sub = bound.slice_cols(np.asarray(frontiers))
            out[relation] = sub.individual_sample(
                fanout_per_relation, rng=rng
            )
        if not out:
            raise GSamplerError(f"no relations end at node type {dst_type!r}")
        return out

    # ------------------------------------------------------------------
    def metapath_walk(
        self,
        metapath: Sequence[Relation],
        seeds: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        ctx: ExecutionContext = NULL_CONTEXT,
    ) -> np.ndarray:
        """Random walk following a metapath (PinSAGE/HetGNN style).

        ``metapath`` is a chain of relations; step ``i`` moves each
        walker from its current node (of the relation's *destination*
        type) to a uniform in-neighbor under that relation (a node of
        the *source* type).  Consecutive relations must chain:
        ``metapath[i].src_type == metapath[i+1].dst_type``.  Returns a
        ``(len(metapath)+1, num_walkers)`` trace with ``-1`` for dead
        ends.
        """
        if not metapath:
            raise ShapeError("metapath must contain at least one relation")
        for a, b in zip(metapath, metapath[1:]):
            if a[0] != b[2]:
                raise ShapeError(
                    f"metapath breaks at {a} -> {b}: source type {a[0]!r} "
                    f"!= next destination type {b[2]!r}"
                )
        rng = rng if rng is not None else rnd.new_rng()
        cur = np.asarray(seeds, dtype=INDEX_DTYPE)
        trace = np.full((len(metapath) + 1, len(cur)), -1, dtype=INDEX_DTYPE)
        trace[0] = cur
        for step, relation in enumerate(metapath):
            csc = self.matrix(relation).get("csc")
            alive = np.flatnonzero(cur >= 0)
            nxt = np.full(len(cur), -1, dtype=INDEX_DTYPE)
            if len(alive):
                nxt[alive] = uniform_walk_step(csc, cur[alive], rng=rng, ctx=ctx)
            trace[step + 1] = nxt
            cur = nxt
        return trace


def hetero_from_typed_edges(
    node_types: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    type_names: Sequence[str] | None = None,
) -> HeteroGraph:
    """Split a homogeneous typed-node graph into per-relation matrices.

    Every edge lands in the relation ``(type(src), "to", type(dst))``
    with endpoints renumbered into per-type id spaces — the standard way
    to lift a flat typed graph into the heterogeneous representation.
    """
    from repro.core.matrix import from_edges

    node_types = np.asarray(node_types, dtype=INDEX_DTYPE)
    num_types = int(node_types.max()) + 1 if len(node_types) else 0
    names = (
        list(type_names)
        if type_names is not None
        else [f"t{i}" for i in range(num_types)]
    )
    if len(names) != num_types:
        raise ShapeError(
            f"{num_types} node types present but {len(names)} names given"
        )
    # Per-type local ids.
    local = np.zeros(len(node_types), dtype=INDEX_DTYPE)
    counts = {}
    for t in range(num_types):
        members = np.flatnonzero(node_types == t)
        local[members] = np.arange(len(members), dtype=INDEX_DTYPE)
        counts[names[t]] = len(members)
    del from_edges  # relations are rectangular; build storage directly
    from repro.sparse import COO, convert

    relations: dict[Relation, Matrix] = {}
    src, dst = np.asarray(src), np.asarray(dst)
    pair_key = node_types[src] * num_types + node_types[dst]
    for key in np.unique(pair_key):
        st, dt = int(key) // num_types, int(key) % num_types
        mask = pair_key == key
        rel = (names[st], "to", names[dt])
        coo = COO(
            rows=local[src[mask]],
            cols=local[dst[mask]],
            values=None,
            shape=(counts[names[st]], counts[names[dt]]),
            edge_ids=np.flatnonzero(mask).astype(INDEX_DTYPE),
        )
        relations[rel] = Matrix(convert(coo, "csc"), is_base_graph=True)
    return HeteroGraph(counts, relations)
