"""The Extract-Compute-Select-Finalize (ECSF) programming model.

Section 3 of the paper observes that every graph-sampling algorithm is a
stack of layers, each decomposable into four steps:

1. **Extract** — slice the subgraph between the frontiers and their
   neighbors (``sub_A = A[:, frontiers]``);
2. **Compute** — derive per-edge/per-node sampling bias (may be empty);
3. **Select** — ``individual_sample`` or ``collective_sample``;
4. **Finalize** — adjust the sample (edge re-weighting, subgraph
   induction) and produce the next layer's frontiers.

This module provides the step vocabulary (used by the IR passes to reason
about which operators may fuse) and the layer-stacking driver shared by
all algorithm implementations.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.matrix import Matrix


class Step(enum.Enum):
    """The four ECSF steps."""

    EXTRACT = "extract"
    COMPUTE = "compute"
    SELECT = "select"
    FINALIZE = "finalize"


#: Which IR operator kinds belong to which ECSF step; the layout-selection
#: pass only searches formats for EXTRACT/SELECT outputs (Section 4.3:
#: "only the extract and select steps modify the graph structure").
STEP_OF_OP: dict[str, Step] = {
    "slice_cols": Step.EXTRACT,
    "slice_rows": Step.EXTRACT,
    "map_scalar": Step.COMPUTE,
    "map_unary": Step.COMPUTE,
    "map_broadcast": Step.COMPUTE,
    "map_combine": Step.COMPUTE,
    "reduce": Step.COMPUTE,
    "spmm": Step.COMPUTE,
    "sddmm": Step.COMPUTE,
    "individual_sample": Step.SELECT,
    "collective_sample": Step.SELECT,
    "labor_sample": Step.SELECT,
    "row": Step.FINALIZE,
    "column": Step.FINALIZE,
    "compact": Step.FINALIZE,
}


@dataclasses.dataclass
class SampledLayer:
    """One layer of a graph sample.

    ``matrix`` is the sampled bipartite block between ``output_nodes``
    (rows, the newly sampled nodes) and ``input_nodes`` (columns, the
    frontiers that requested them), all in original graph ids.
    """

    matrix: Matrix
    input_nodes: np.ndarray
    output_nodes: np.ndarray

    @property
    def num_edges(self) -> int:
        return self.matrix.nnz


@dataclasses.dataclass
class GraphSample:
    """A complete multi-layer graph sample for one mini-batch.

    ``layers[0]`` is the layer closest to the seeds.  ``all_nodes`` is the
    union of every layer's nodes — what a trainer gathers features for.
    """

    seeds: np.ndarray
    layers: list[SampledLayer]

    @property
    def all_nodes(self) -> np.ndarray:
        parts = [self.seeds]
        for layer in self.layers:
            parts.append(layer.output_nodes)
        return np.unique(np.concatenate(parts))

    @property
    def num_edges(self) -> int:
        return sum(layer.num_edges for layer in self.layers)


#: Signature of a one-layer sampler: (A, frontiers, fanout) -> (sample, next).
OneLayerFn = Callable[[Matrix, np.ndarray, int], tuple[Matrix, np.ndarray]]


def run_layers(
    graph: Matrix,
    seeds: np.ndarray,
    fanouts: Sequence[int],
    one_layer: OneLayerFn,
) -> GraphSample:
    """Stack ``one_layer`` over ``fanouts``, threading frontiers through.

    This is the driver every ECSF algorithm shares; only ``one_layer``
    differs between algorithms.  Layers stop early if a frontier set
    becomes empty (all walks hit dead ends).
    """
    frontiers = np.asarray(seeds)
    layers: list[SampledLayer] = []
    for fanout in fanouts:
        if len(frontiers) == 0:
            break
        sample, next_frontiers = one_layer(graph, frontiers, fanout)
        layers.append(
            SampledLayer(
                matrix=sample,
                input_nodes=frontiers,
                output_nodes=next_frontiers,
            )
        )
        frontiers = next_frontiers
    return GraphSample(seeds=np.asarray(seeds), layers=layers)


def minibatches(
    node_ids: np.ndarray,
    batch_size: int,
    *,
    shuffle: bool = True,
    rng: np.random.Generator | None = None,
    drop_last: bool = False,
) -> list[np.ndarray]:
    """Split seed nodes into mini-batches for one epoch."""
    node_ids = np.asarray(node_ids)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()
        node_ids = rng.permutation(node_ids)
    batches = []
    for start in range(0, len(node_ids), batch_size):
        batch = node_ids[start : start + batch_size]
        if drop_last and len(batch) < batch_size:
            break
        batches.append(batch)
    return batches
