"""Random-number utilities shared by the sampling kernels.

The GPU samplers in the paper (and in SkyWalker, which gSampler compares
against) rely on two classic tricks that we reproduce here in vectorized
form:

* the **exponential race** (equivalently Gumbel top-k): drawing
  ``Exp(1) / w_i`` per item and keeping the ``k`` smallest yields a
  weighted sample *without* replacement in one parallel pass;
* the **alias method**: O(1) weighted sampling *with* replacement after an
  O(n) table build, which is what SkyWalker's kernels implement.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShapeError

_DEFAULT_SEED = 2023


def new_rng(seed: int | None = _DEFAULT_SEED) -> np.random.Generator:
    """A fresh PCG64 generator; the package default seed is 2023."""
    return np.random.default_rng(seed)


def exponential_race_keys(
    weights: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Per-item race keys: smaller key == earlier finish == selected first.

    Items with non-positive weight get ``+inf`` keys and are never chosen
    before any positively-weighted item.
    """
    weights = np.asarray(weights, dtype=np.float64)
    keys = rng.exponential(size=len(weights))
    with np.errstate(divide="ignore", invalid="ignore"):
        keys = keys / weights
    keys[weights <= 0] = np.inf
    return keys


def weighted_choice_without_replacement(
    weights: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of ``k`` items drawn without replacement, prob ∝ weight.

    When fewer than ``k`` items have positive weight, all of them are
    returned (the result may be shorter than ``k``).
    """
    weights = np.asarray(weights, dtype=np.float64)
    positive = int(np.count_nonzero(weights > 0))
    take = min(k, positive)
    if take == 0:
        return np.empty(0, dtype=np.int64)
    keys = exponential_race_keys(weights, rng)
    if take == len(keys):
        return np.flatnonzero(weights > 0).astype(np.int64)
    idx = np.argpartition(keys, take - 1)[:take]
    return idx.astype(np.int64)


def weighted_choice_with_replacement(
    weights: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of ``k`` items drawn with replacement, prob ∝ weight."""
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0 or k <= 0:
        return np.empty(0, dtype=np.int64)
    cdf = np.cumsum(weights)
    targets = rng.random(k) * total
    return np.searchsorted(cdf, targets, side="right").astype(np.int64)


@dataclasses.dataclass
class AliasTable:
    """Walker's alias table for O(1) weighted draws with replacement."""

    prob: np.ndarray
    alias: np.ndarray

    @classmethod
    def build(cls, weights: np.ndarray) -> "AliasTable":
        """Construct the table in O(n) from non-negative weights."""
        weights = np.asarray(weights, dtype=np.float64)
        n = len(weights)
        if n == 0:
            raise ShapeError("cannot build an alias table over zero items")
        total = weights.sum()
        if total <= 0:
            # Degenerate: uniform over all items.
            scaled = np.ones(n, dtype=np.float64)
        else:
            scaled = weights * (n / total)
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        return cls(prob=prob, alias=alias)

    def sample(self, k: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``k`` indices with replacement."""
        n = len(self.prob)
        slots = rng.integers(0, n, size=k)
        accept = rng.random(k) < self.prob[slots]
        return np.where(accept, slots, self.alias[slots]).astype(np.int64)


def segmented_uniform_with_replacement(
    lengths: np.ndarray, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """For each segment, draw ``k`` uniform offsets with replacement.

    Empty segments contribute nothing.  Returns ``(segment_ids, offsets)``
    flat arrays of equal length.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    nonempty = np.flatnonzero(lengths > 0)
    if len(nonempty) == 0 or k <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    seg_ids = np.repeat(nonempty, k)
    u = rng.random(len(seg_ids))
    offsets = np.floor(u * lengths[seg_ids]).astype(np.int64)
    # Guard against u == 1.0 rounding onto the segment length.
    np.minimum(offsets, lengths[seg_ids] - 1, out=offsets)
    return seg_ids, offsets


def segmented_race_select(
    keys: np.ndarray,
    indptr: np.ndarray,
    k: int | np.ndarray,
) -> np.ndarray:
    """Positions of the ``k`` smallest keys within every indptr segment.

    ``k`` may be a scalar or a per-segment array.  Items with ``+inf``
    keys (zero weight) are never selected; segments shorter than their
    ``k`` return all their finite-key items.  Returns flat positions into
    the original arrays, grouped by segment in ascending-key order.
    """
    lengths = np.diff(indptr)
    n_seg = len(lengths)
    if keys.shape != (int(indptr[-1]),):
        raise ShapeError("keys length must equal indptr[-1]")
    k_arr = np.full(n_seg, k, dtype=np.int64) if np.isscalar(k) else np.asarray(k)
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64)
    seg_ids = np.repeat(np.arange(n_seg, dtype=np.int64), lengths)
    order = np.lexsort((keys, seg_ids))
    sorted_keys = keys[order]
    # After the sort, each segment still occupies [indptr[i], indptr[i+1]).
    finite_per_seg = _finite_prefix(sorted_keys, indptr)
    take = np.minimum(np.minimum(k_arr, lengths), finite_per_seg)
    from repro.sparse.formats import gather_ranges

    picks = gather_ranges(indptr[:-1], take)
    return order[picks]


def _finite_prefix(sorted_keys: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per segment, how many leading keys are finite after sorting."""
    finite = np.isfinite(sorted_keys).astype(np.int64)
    csum = np.zeros(len(finite) + 1, dtype=np.int64)
    np.cumsum(finite, out=csum[1:])
    return csum[indptr[1:]] - csum[indptr[:-1]]
