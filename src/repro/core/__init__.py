"""Core of the reproduction: the matrix-centric API and ECSF model."""

from repro.core.ecsf import (
    STEP_OF_OP,
    GraphSample,
    SampledLayer,
    Step,
    minibatches,
    run_layers,
)
from repro.core.hetero import HeteroGraph, hetero_from_typed_edges
from repro.core.matrix import Matrix, from_edges
from repro.core.ppr import global_pagerank, push_ppr, topk_ppr_neighbors
from repro.core.random import new_rng
from repro.core.sampling import (
    CollectiveResult,
    collective_sample,
    fused_extract_individual_sample,
    individual_sample,
    uniform_walk_step,
)

__all__ = [
    "STEP_OF_OP",
    "CollectiveResult",
    "GraphSample",
    "HeteroGraph",
    "Matrix",
    "SampledLayer",
    "Step",
    "collective_sample",
    "from_edges",
    "global_pagerank",
    "fused_extract_individual_sample",
    "hetero_from_typed_edges",
    "individual_sample",
    "minibatches",
    "new_rng",
    "push_ppr",
    "run_layers",
    "topk_ppr_neighbors",
    "uniform_walk_step",
]
