"""Select-step kernels: individual (node-wise) and collective (layer-wise).

These implement the two Select operators of Table 4:

* ``individual_sample(K, probs)`` — every frontier (column) independently
  samples up to ``K`` of its in-edges, probability proportional to the
  per-edge ``probs`` (uniform when omitted);
* ``collective_sample(K, node_probs)`` — ``K`` of the matrix's *row*
  nodes are sampled jointly across all frontiers, probability
  proportional to ``node_probs``; the result keeps only edges between the
  selected rows and the frontiers and is compacted to ``K x T``.

Both also exist as *fused* variants that sample straight out of the base
graph's CSC without materializing the extracted subgraph — gSampler's
Extract-Select fusion (Figure 5a).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import random as rnd
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import FormatError, ShapeError
from repro.sparse import (
    CSC,
    INDEX_DTYPE,
    SparseFormat,
    edge_values,
    to_csc,
)
from repro.sparse.formats import gather_ranges

_ITEM = 8
_VAL = 4


@dataclasses.dataclass
class CollectiveResult:
    """Output of a collective sample: the ``K x T`` matrix + row ids."""

    matrix: CSC
    selected_rows: np.ndarray


def _edge_keys(
    nnz: int,
    values: np.ndarray | None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Race keys per edge: uniform when unweighted, Exp(1)/w when biased."""
    if values is None:
        return rng.random(nnz)
    return rnd.exponential_race_keys(values, rng)


def individual_sample(
    matrix: SparseFormat,
    k: int,
    probs: SparseFormat | np.ndarray | None = None,
    *,
    replace: bool = False,
    rng: np.random.Generator | None = None,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> CSC:
    """Per-column sampling of up to ``k`` edges; returns a CSC sub-matrix.

    ``probs`` supplies per-edge sampling bias, either as a matrix with the
    same topology or as a raw per-edge array; edges keep their original
    values in the output.  Columns with fewer than ``k`` (positively
    weighted) edges return what they have when sampling without
    replacement.
    """
    if k <= 0:
        raise ShapeError(f"fanout k must be positive, got {k}")
    rng = rng if rng is not None else rnd.new_rng()
    csc = to_csc(matrix, ctx)
    bias = _resolve_edge_bias(csc, probs)
    picks = _pick_per_segment(csc.indptr, bias, k, replace, rng)
    out = _build_csc_from_picks(csc, picks, k, replace)
    ctx.record(
        "individual_sample",
        bytes_read=csc.shape[1] * 2 * _ITEM
        + csc.nnz * (_ITEM + (0 if bias is None else _VAL)),
        bytes_written=out.nbytes(),
        flops=csc.nnz * (2.0 if bias is not None else 1.0),
        tasks=max(csc.nnz, 1),  # edge-parallel candidate scan
    )
    return out


def labor_sample(
    matrix: SparseFormat,
    k: int,
    *,
    rng: np.random.Generator | None = None,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> CSC:
    """LABOR-style variance-reduced per-column sampling (LABOR-0).

    Every frontier (column) admits each of its in-edges with inclusion
    probability ``pi_c = min(1, k / deg_c)`` — the same expected fanout
    as ``individual_sample(k)`` — but the Bernoulli coins are *shared*:
    one uniform variate is drawn per **row** node, and edge ``(r, c)``
    survives iff ``u[r] < pi_c``.  Columns that share neighbors thus
    tend to admit the *same* rows, shrinking the union frontier (and the
    feature-transfer bytes it drives) without changing any per-edge
    marginal.  Surviving edges carry Horvitz–Thompson importance weights
    ``w_e / pi_c`` so aggregations stay unbiased.
    """
    if k <= 0:
        raise ShapeError(f"fanout k must be positive, got {k}")
    rng = rng if rng is not None else rnd.new_rng()
    csc = to_csc(matrix, ctx)
    deg = np.diff(csc.indptr).astype(np.int64)
    pi_col = np.ones(csc.shape[1], dtype=np.float64)
    occupied = deg > 0
    pi_col[occupied] = np.minimum(1.0, float(k) / deg[occupied])
    pi_edge = np.repeat(pi_col, deg)
    # One shared uniform per row node — the correlated-Bernoulli core.
    u = rng.random(csc.shape[0])
    keep = u[csc.rows] < pi_edge
    picks = np.flatnonzero(keep).astype(INDEX_DTYPE)
    kept = keep.astype(INDEX_DTYPE)
    csum = np.zeros(csc.nnz + 1, dtype=INDEX_DTYPE)
    np.cumsum(kept, out=csum[1:])
    indptr = csum[csc.indptr].astype(INDEX_DTYPE)
    base_vals = (
        np.ones(len(picks), dtype=np.float64)
        if csc.values is None
        else csc.values[picks].astype(np.float64)
    )
    out = CSC(
        indptr=indptr,
        rows=csc.rows[picks],
        values=(base_vals / pi_edge[picks]).astype(np.float32),
        shape=csc.shape,
        edge_ids=(picks if csc.edge_ids is None else csc.edge_ids[picks]),
    )
    ctx.record(
        "labor_sample",
        bytes_read=csc.shape[1] * 2 * _ITEM
        + csc.nnz * (_ITEM + (0 if csc.values is None else _VAL)),
        bytes_written=out.nbytes(),
        flops=csc.nnz * 2.0,  # threshold compare + HT reweight per edge
        tasks=max(csc.nnz, 1),  # edge-parallel candidate scan
    )
    return out


def fused_extract_individual_sample(
    graph_csc: CSC,
    frontiers: np.ndarray,
    k: int,
    probs_edge_values: np.ndarray | None = None,
    *,
    replace: bool = False,
    rng: np.random.Generator | None = None,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> CSC:
    """Extract-Select fusion: sample neighbors directly from the graph.

    Semantically identical to ``individual_sample(A[:, frontiers], k)``
    but the extracted subgraph is never written to memory: the kernel
    reads only the frontier index ranges and writes only the sampled
    edges, which is the memory saving Figure 10's "C" bar measures.
    """
    rng = rng if rng is not None else rnd.new_rng()
    frontiers = np.asarray(frontiers, dtype=INDEX_DTYPE)
    starts = graph_csc.indptr[frontiers]
    lengths = graph_csc.indptr[frontiers + 1] - starts
    sub_indptr = np.zeros(len(frontiers) + 1, dtype=INDEX_DTYPE)
    np.cumsum(lengths, out=sub_indptr[1:])
    flat = gather_ranges(starts, lengths)

    if probs_edge_values is not None:
        bias = np.asarray(probs_edge_values, dtype=np.float64)[flat]
    elif graph_csc.values is not None and _has_nonuniform(graph_csc.values):
        bias = graph_csc.values[flat].astype(np.float64)
    else:
        bias = None
    picks_local = _pick_per_segment(sub_indptr, bias, k, replace, rng)
    picks = flat[picks_local]

    # Reconstruct the per-column layout of the picks.
    seg_of_pick = _segments_of(picks_local, sub_indptr)
    counts = np.bincount(seg_of_pick, minlength=len(frontiers))
    out_indptr = np.zeros(len(frontiers) + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=out_indptr[1:])
    out = CSC(
        indptr=out_indptr,
        rows=graph_csc.rows[picks],
        values=None if graph_csc.values is None else graph_csc.values[picks],
        shape=(graph_csc.shape[0], len(frontiers)),
        edge_ids=(
            picks
            if graph_csc.edge_ids is None
            else graph_csc.edge_ids[picks]
        ),
    )
    # Fused accounting: indptr lookups + sampled output only. The bias
    # scan (when biased) still reads the candidate edges once, and pays
    # the same 2 flops/edge (key generation + race compare) the unfused
    # individual_sample charges — fusion saves memory, not arithmetic.
    read = len(frontiers) * 2 * _ITEM + (
        int(lengths.sum()) * _VAL if bias is not None else 0
    )
    graph_read = read + out.nnz * _ITEM
    ctx.record(
        "fused_extract_individual_sample",
        bytes_read=graph_read,
        bytes_written=out.nbytes(),
        flops=float(lengths.sum()) * (2.0 if bias is not None else 1.0),
        tasks=max(int(lengths.sum()), 1),  # edge-parallel
        graph_bytes=graph_read,
    )
    return out


def fused_extract_reduce(
    graph_csc: CSC,
    frontiers: np.ndarray,
    op: str,
    axis: int,
    *,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> np.ndarray:
    """Extract-Reduce fusion: reduce ``A[:, frontiers]`` without
    materializing it.

    After the pre-processing pass rewrites LADIES's bias computation to
    ``M[:, frontiers].sum(axis=0)``, this kernel computes the per-row (or
    per-column) reduction straight from the graph's CSC ranges — reading
    only the frontier columns' edges and writing only the output vector.
    """
    frontiers = np.asarray(frontiers, dtype=INDEX_DTYPE)
    starts = graph_csc.indptr[frontiers]
    lengths = graph_csc.indptr[frontiers + 1] - starts
    flat = gather_ranges(starts, lengths)
    vals = (
        np.ones(len(flat), dtype=np.float64)
        if graph_csc.values is None
        else graph_csc.values[flat].astype(np.float64)
    )
    if axis == 0:
        if op != "sum":
            raise ShapeError(f"fused extract-reduce supports sum, got {op!r}")
        out = np.bincount(
            graph_csc.rows[flat], weights=vals, minlength=graph_csc.shape[0]
        ).astype(np.float32)
        out_len = graph_csc.shape[0]
    elif axis == 1:
        csum = np.zeros(len(vals) + 1, dtype=np.float64)
        np.cumsum(vals, out=csum[1:])
        sub_indptr = np.zeros(len(frontiers) + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=sub_indptr[1:])
        out = (csum[sub_indptr[1:]] - csum[sub_indptr[:-1]]).astype(np.float32)
        out_len = len(frontiers)
    else:
        raise ShapeError(f"reduce axis must be 0 or 1, got {axis}")
    read = len(frontiers) * 2 * _ITEM + len(flat) * (_ITEM + _VAL)
    ctx.record(
        "fused_extract_reduce",
        bytes_read=read,
        bytes_written=out_len * _VAL,
        flops=float(len(flat)) * 2.0,
        tasks=max(len(flat), 1),
        graph_bytes=read,
    )
    return out


def collective_sample(
    matrix: SparseFormat,
    k: int,
    node_probs: np.ndarray | None = None,
    *,
    replace: bool = False,
    rng: np.random.Generator | None = None,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> CollectiveResult:
    """Layer-wise sampling: draw ``k`` row nodes jointly, then restrict.

    ``node_probs`` is a vector over the matrix's rows; when omitted, the
    per-edge bias (1 for unweighted) is aggregated per row, as the paper
    specifies.  The returned matrix is compacted to ``K x T`` with
    ``selected_rows`` holding the chosen (local) row indices.
    """
    if k <= 0:
        raise ShapeError(f"layer width k must be positive, got {k}")
    rng = rng if rng is not None else rnd.new_rng()
    csc = to_csc(matrix, ctx)
    if node_probs is None:
        from repro.sparse import reduce_rows

        node_probs = reduce_rows(csc, "sum", ctx).astype(np.float64)
    else:
        node_probs = np.asarray(node_probs, dtype=np.float64)
        if node_probs.shape != (csc.shape[0],):
            raise ShapeError(
                f"node_probs shape {node_probs.shape} != rows ({csc.shape[0]},)"
            )
    if replace:
        selected, rounds = _distinct_rows_with_replacement(node_probs, k, rng)
    else:
        selected = np.sort(rnd.weighted_choice_without_replacement(node_probs, k, rng))
        rounds = 1
    sub = _restrict_rows_csc(csc, selected)
    ctx.record(
        "collective_sample",
        bytes_read=node_probs.nbytes
        + csc.nnz * (_ITEM + (_VAL if csc.values is not None else 0)),
        bytes_written=sub.nbytes() + selected.nbytes,
        flops=csc.shape[0] * rounds + csc.nnz,
        tasks=max(csc.nnz, 1),
    )
    return CollectiveResult(matrix=sub, selected_rows=selected)


def _distinct_rows_with_replacement(
    node_probs: np.ndarray, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, int]:
    """With-replacement draws repeated until ``k`` distinct rows land.

    A single batch of ``k`` draws deduplicated would silently shrink the
    layer below ``k``; redrawing until ``k`` distinct rows accumulate
    keeps the layer width while staying a with-replacement process.  The
    distinct-row sequence this produces is distributed exactly as
    successive weighted draws without replacement (Efraimidis–Spirakis),
    so the replace=True layer matches the race-select path the
    super-batch kernel always uses.  Returns the sorted distinct rows
    and the number of draw rounds (for cost accounting).
    """
    avail = int(np.count_nonzero(node_probs > 0))
    target = min(k, avail)
    chosen = np.zeros(len(node_probs), dtype=bool)
    count = 0
    rounds = 0
    while count < target:
        rounds += 1
        draws = rnd.weighted_choice_with_replacement(node_probs, k, rng)
        fresh = draws[~chosen[draws]]
        # First occurrence per row, in draw order, capped at the deficit
        # — extra distinct rows in the same round must not slip in.
        _, first = np.unique(fresh, return_index=True)
        fresh = fresh[np.sort(first)][: target - count]
        chosen[fresh] = True
        count += len(fresh)
    return np.flatnonzero(chosen).astype(INDEX_DTYPE), max(rounds, 1)


def _restrict_rows_csc(csc: CSC, keep_rows: np.ndarray) -> CSC:
    """Keep only edges whose row is in ``keep_rows``; compact rows."""
    lut = np.full(csc.shape[0], -1, dtype=INDEX_DTYPE)
    lut[keep_rows] = np.arange(len(keep_rows), dtype=INDEX_DTYPE)
    new_rows = lut[csc.rows]
    mask = new_rows >= 0
    kept = mask.astype(INDEX_DTYPE)
    csum = np.zeros(len(kept) + 1, dtype=INDEX_DTYPE)
    np.cumsum(kept, out=csum[1:])
    per_col = csum[csc.indptr[1:]] - csum[csc.indptr[:-1]]
    indptr = np.zeros(csc.shape[1] + 1, dtype=INDEX_DTYPE)
    np.cumsum(per_col, out=indptr[1:])
    return CSC(
        indptr=indptr,
        rows=new_rows[mask],
        values=None if csc.values is None else csc.values[mask],
        shape=(len(keep_rows), csc.shape[1]),
        edge_ids=None if csc.edge_ids is None else csc.edge_ids[mask],
    )


def _resolve_edge_bias(
    csc: CSC, probs: SparseFormat | np.ndarray | None
) -> np.ndarray | None:
    """Normalize the ``probs`` argument to a per-edge float array or None."""
    if probs is None:
        if csc.values is not None and _has_nonuniform(csc.values):
            return csc.values.astype(np.float64)
        return None
    if isinstance(probs, np.ndarray):
        if probs.shape != (csc.nnz,):
            raise ShapeError(
                f"per-edge probs shape {probs.shape} != nnz ({csc.nnz},)"
            )
        return probs.astype(np.float64)
    if probs.nnz != csc.nnz or probs.shape != csc.shape:
        raise ShapeError("probs matrix topology differs from target matrix")
    probs_csc = to_csc(probs)
    return edge_values(probs_csc).astype(np.float64)


def _has_nonuniform(values: np.ndarray) -> bool:
    """True when edge weights actually vary (skip the biased path if not)."""
    return len(values) > 0 and bool(
        np.any(values != values.flat[0])
    )


def _pick_per_segment(
    indptr: np.ndarray,
    bias: np.ndarray | None,
    k: int,
    replace: bool,
    rng: np.random.Generator,
) -> np.ndarray:
    """Flat edge positions selected for every indptr segment."""
    nnz = int(indptr[-1])
    if nnz == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    if replace:
        lengths = np.diff(indptr)
        if bias is None:
            seg_ids, offsets = rnd.segmented_uniform_with_replacement(
                lengths, k, rng
            )
            return (indptr[seg_ids] + offsets).astype(INDEX_DTYPE)
        return _segmented_biased_with_replacement(indptr, bias, k, rng)
    keys = _edge_keys(nnz, bias, rng)
    return rnd.segmented_race_select(keys, indptr, k).astype(INDEX_DTYPE)


def _segmented_biased_with_replacement(
    indptr: np.ndarray, bias: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Inverse-CDF draws per segment, vectorized across segments."""
    csum = np.zeros(len(bias) + 1, dtype=np.float64)
    np.cumsum(bias, out=csum[1:])
    seg_totals = csum[indptr[1:]] - csum[indptr[:-1]]
    nonempty = np.flatnonzero(seg_totals > 0)
    if len(nonempty) == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    seg_ids = np.repeat(nonempty, k)
    targets = csum[indptr[seg_ids]] + rng.random(len(seg_ids)) * seg_totals[seg_ids]
    picks = np.searchsorted(csum, targets, side="right") - 1
    np.clip(picks, indptr[seg_ids], indptr[seg_ids + 1] - 1, out=picks)
    return picks.astype(INDEX_DTYPE)


def _segments_of(flat_positions: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Segment index owning each flat position."""
    return (np.searchsorted(indptr, flat_positions, side="right") - 1).astype(
        INDEX_DTYPE
    )


def _build_csc_from_picks(
    csc: CSC, picks: np.ndarray, k: int, replace: bool
) -> CSC:
    """Assemble the sampled CSC given flat edge positions (segment-sorted)."""
    seg_of_pick = _segments_of(picks, csc.indptr)
    counts = np.bincount(seg_of_pick, minlength=csc.shape[1])
    indptr = np.zeros(csc.shape[1] + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSC(
        indptr=indptr,
        rows=csc.rows[picks],
        values=None if csc.values is None else csc.values[picks],
        shape=csc.shape,
        edge_ids=(
            picks if csc.edge_ids is None else csc.edge_ids[picks]
        ),
    )


def uniform_walk_step(
    graph_csc: CSC,
    frontiers: np.ndarray,
    rng: np.random.Generator | None = None,
    ctx: ExecutionContext = NULL_CONTEXT,
    bias_edge_values: np.ndarray | None = None,
) -> np.ndarray:
    """One random-walk step: pick one in-neighbor per frontier.

    Returns the next node per frontier, with ``-1`` for dead ends
    (frontiers without in-edges).  Used by DeepWalk/Node2Vec/PinSAGE.
    """
    rng = rng if rng is not None else rnd.new_rng()
    frontiers = np.asarray(frontiers, dtype=INDEX_DTYPE)
    starts = graph_csc.indptr[frontiers]
    lengths = graph_csc.indptr[frontiers + 1] - starts
    nxt = np.full(len(frontiers), -1, dtype=INDEX_DTYPE)
    if bias_edge_values is None:
        seg_ids, offsets = rnd.segmented_uniform_with_replacement(lengths, 1, rng)
        nxt[seg_ids] = graph_csc.rows[starts[seg_ids] + offsets]
    else:
        flat = gather_ranges(starts, lengths)
        sub_indptr = np.zeros(len(frontiers) + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=sub_indptr[1:])
        picks = _segmented_biased_with_replacement(
            sub_indptr, np.asarray(bias_edge_values, dtype=np.float64)[flat], 1, rng
        )
        seg = _segments_of(picks, sub_indptr)
        nxt[seg] = graph_csc.rows[flat[picks]]
    # Uniform picks read indptr plus the one chosen row per frontier;
    # the biased inverse-CDF scan reads every candidate edge's row id
    # and weight before picking, and must be charged for all of them.
    if bias_edge_values is None:
        read = len(frontiers) * 2 * _ITEM + len(frontiers) * _ITEM
    else:
        read = len(frontiers) * 2 * _ITEM + int(lengths.sum()) * (_ITEM + _VAL)
    ctx.record(
        "walk_step",
        bytes_read=read,
        bytes_written=nxt.nbytes,
        flops=float(max(lengths.sum(), 1)),
        tasks=max(int(lengths.sum()), 1),  # alias-table lanes per edge
        graph_bytes=read,
    )
    return nxt
