"""Personalized PageRank (PPR): the static bias behind SEAL and ShaDow.

Table 2 lists SEAL and ShaDow as sampling neighbors "with uniform or PPR
bias", and Section 4.2 names pre-computed PPR scores as a canonical
pre-processing target.  Two estimators are provided:

* :func:`global_pagerank` — power iteration over the whole graph; a
  frontier-invariant vector the pre-processing pass can hoist;
* :func:`push_ppr` — the Andersen-Chung-Lang forward-push algorithm for
  *personalized* scores from a single source, used per seed when a
  localized ranking is needed (ShaDow's PPR neighborhoods).

Both operate on the in-edge convention of this package: ``A[u, v]`` is
``u -> v``, so random-walk mass flows from ``v`` backwards over columns —
matching how sampling traverses in-neighborhoods.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import ShapeError
from repro.sparse import VALUE_DTYPE

_ITEM = 8
_VAL = 4


def global_pagerank(
    graph: Matrix,
    *,
    damping: float = 0.85,
    max_iterations: int = 50,
    tolerance: float = 1e-8,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> np.ndarray:
    """PageRank over the reversed edges (importance as a *neighbor*).

    Each iteration is one SpMM against the column-normalized adjacency;
    iterations stop at ``tolerance`` in L1.  The result sums to one.
    """
    if not 0.0 < damping < 1.0:
        raise ShapeError(f"damping must be in (0, 1), got {damping}")
    n = graph.shape[0]
    if n == 0:
        return np.zeros(0, dtype=VALUE_DTYPE)
    # Column-normalize: every frontier distributes rank equally (or by
    # weight) over its in-neighbors.
    col_mass = graph.sum(axis=1).astype(np.float64)
    norm = Matrix(
        graph.any_storage(), ctx=NULL_CONTEXT
    ).div(np.maximum(col_mass, 1e-12).astype(np.float32), axis=1)
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    teleport = (1.0 - damping) / n
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        spread = norm @ rank.astype(np.float32)
        # Dangling frontiers (no in-edges) teleport their mass.
        dangling = float(rank[col_mass <= 0].sum()) / n
        new_rank = teleport + damping * (spread.astype(np.float64) + dangling)
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < tolerance:
            break
    ctx.record(
        "global_pagerank",
        bytes_read=iterations * graph.nnz * (_ITEM + _VAL),
        bytes_written=iterations * n * _VAL,
        flops=2.0 * iterations * graph.nnz,
        tasks=max(graph.nnz, 1),
    )
    total = rank.sum()
    return (rank / total if total > 0 else rank).astype(VALUE_DTYPE)


def push_ppr(
    graph: Matrix,
    source: int,
    *,
    alpha: float = 0.15,
    epsilon: float = 1e-4,
    max_pushes: int = 100_000,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> np.ndarray:
    """Forward-push personalized PageRank from one source node.

    Standard ACL push: maintain ``(p, r)`` with ``p`` the estimate and
    ``r`` the residual; repeatedly push any node whose residual exceeds
    ``epsilon * degree``.  Touches only the source's neighborhood, which
    is what makes per-seed PPR affordable.
    """
    if not 0.0 < alpha < 1.0:
        raise ShapeError(f"alpha must be in (0, 1), got {alpha}")
    n = graph.shape[0]
    if not 0 <= source < n:
        raise ShapeError(f"source {source} out of range for {n} nodes")
    csc = graph.get("csc")
    degrees = np.diff(csc.indptr)
    p = np.zeros(n, dtype=np.float64)
    r = np.zeros(n, dtype=np.float64)
    r[source] = 1.0
    queue = [source]
    queued = np.zeros(n, dtype=bool)
    queued[source] = True
    pushes = 0
    touched = 0
    while queue and pushes < max_pushes:
        u = queue.pop()
        queued[u] = False
        deg = int(degrees[u])
        if deg == 0:
            # Dead end: all residual becomes estimate.
            p[u] += r[u]
            r[u] = 0.0
            continue
        if r[u] < epsilon * deg:
            continue
        pushes += 1
        p[u] += alpha * r[u]
        share = (1.0 - alpha) * r[u] / deg
        r[u] = 0.0
        neighbors = csc.rows[csc.indptr[u] : csc.indptr[u + 1]]
        touched += len(neighbors)
        np.add.at(r, neighbors, share)
        for v in np.unique(neighbors):
            if not queued[v] and r[v] >= epsilon * max(degrees[v], 1):
                queue.append(int(v))
                queued[v] = True
    ctx.record(
        "push_ppr",
        bytes_read=touched * (_ITEM + _VAL) + pushes * 3 * _VAL,
        bytes_written=touched * _VAL,
        flops=float(touched) * 2.0,
        tasks=max(touched, 1),
    )
    return p.astype(VALUE_DTYPE)


def topk_ppr_neighbors(
    graph: Matrix,
    source: int,
    k: int,
    *,
    alpha: float = 0.15,
    epsilon: float = 1e-4,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> np.ndarray:
    """The ``k`` highest-PPR nodes around ``source`` (excluding itself).

    This is ShaDow's PPR-neighborhood construction: the subgraph for a
    seed is induced over its top-k PPR nodes instead of a sampled tree.
    """
    scores = push_ppr(graph, source, alpha=alpha, epsilon=epsilon, ctx=ctx)
    scores[source] = 0.0
    positive = int(np.count_nonzero(scores > 0))
    take = min(k, positive)
    if take == 0:
        return np.empty(0, dtype=np.int64)
    top = np.argpartition(scores, -take)[-take:]
    return np.sort(top).astype(np.int64)
