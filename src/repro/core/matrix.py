"""The matrix-centric API: gSampler's user-facing abstraction.

A :class:`Matrix` is a (sub)graph viewed as a sparse adjacency matrix, as
in Section 3 of the paper: entry ``A[u, v]`` is the edge ``u -> v``, so
``A[:, v]`` holds ``v``'s in-coming edges and ``A[v, :]`` its out-going
edges.  Every operator of Table 4 is a method here:

====================  ====================================================
Step                  Operators
====================  ====================================================
Extract               ``A[:, cols]``, ``A[rows, :]``
Compute               ``A @ D``, ``A.add/sub/mul/div(V, axis)``,
                      ``A.sum/mean/max/min(axis)``, ``A <op> v`` for
                      ``+ - * / **``
Select                ``A.individual_sample(K, probs)``,
                      ``A.collective_sample(K, node_probs)``
Finalize              ``A.row()``, ``A.column()``
====================  ====================================================

Axis convention: ``axis=0`` refers to the *row* dimension — ``sum(axis=0)``
returns one value per row (reducing across that row's edges), and
``div(V, axis=0)`` divides each edge by ``V[row]``.  ``axis=1`` is the
column (frontier) dimension.

A matrix may be a slice of a larger graph; ``row_ids``/``col_ids`` map its
local indices back to original node ids, and ``row()``/``column()`` always
return *original* ids so users never handle id remapping themselves (the
paper calls this out as a usability win over DGL/PyG).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core import sampling
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import FormatError, ShapeError
from repro.sparse import (
    INDEX_DTYPE,
    LAYOUTS,
    SparseFormat,
    as_index_array,
    compact_rows,
    convert,
    edge_values,
)


class Matrix:
    """A sparse (sub)graph with the Table-4 operator set.

    Parameters
    ----------
    storage:
        Any of the three sparse containers; further layouts are produced
        (and cached) on demand.
    row_ids / col_ids:
        Local-to-original id maps; ``None`` means the identity.
    ctx:
        Execution context used to account eager kernel launches.
    is_base_graph:
        Marks the matrix as the input graph; reads from it are charged as
        UVA traffic when the graph is host-resident.
    """

    __array_priority__ = 100  # keep NumPy from hijacking our operators

    def __init__(
        self,
        storage: SparseFormat,
        *,
        row_ids: np.ndarray | None = None,
        col_ids: np.ndarray | None = None,
        ctx: ExecutionContext = NULL_CONTEXT,
        is_base_graph: bool = False,
    ) -> None:
        self._storages: dict[str, SparseFormat] = {storage.layout: storage}
        self.shape: tuple[int, int] = storage.shape
        self.row_ids = None if row_ids is None else as_index_array(row_ids)
        self.col_ids = None if col_ids is None else as_index_array(col_ids)
        self.ctx = ctx
        self.is_base_graph = is_base_graph
        if self.row_ids is not None and len(self.row_ids) != self.shape[0]:
            raise ShapeError("row_ids length must equal row count")
        if self.col_ids is not None and len(self.col_ids) != self.shape[1]:
            raise ShapeError("col_ids length must equal column count")

    # ------------------------------------------------------------------
    # Storage management
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return next(iter(self._storages.values())).nnz

    @property
    def available_layouts(self) -> tuple[str, ...]:
        return tuple(sorted(self._storages))

    def get(self, layout: str) -> SparseFormat:
        """Fetch (converting and caching if needed) the given layout."""
        if layout not in LAYOUTS:
            raise FormatError(f"unknown layout {layout!r}; expected one of {LAYOUTS}")
        if layout not in self._storages:
            src = self._preferred_source(layout)
            self._storages[layout] = convert(src, layout, self.ctx)
        return self._storages[layout]

    def _preferred_source(self, target: str) -> SparseFormat:
        """Cheapest available source format for converting to ``target``."""
        # Decompression (csr/csc -> coo) is cheap; compression is not.
        if target == "coo":
            for name in ("csr", "csc"):
                if name in self._storages:
                    return self._storages[name]
        if "coo" in self._storages:
            return self._storages["coo"]
        return next(iter(self._storages.values()))

    def any_storage(self) -> SparseFormat:
        """Some already-materialized storage (no conversion)."""
        return next(iter(self._storages.values()))

    def _spawn(
        self,
        storage: SparseFormat,
        *,
        row_ids: np.ndarray | None = None,
        col_ids: np.ndarray | None = None,
    ) -> "Matrix":
        """Child matrix inheriting context; never a base graph."""
        return Matrix(
            storage,
            row_ids=self.row_ids if row_ids is None else row_ids,
            col_ids=self.col_ids if col_ids is None else col_ids,
            ctx=self.ctx,
            is_base_graph=False,
        )

    @property
    def values(self) -> np.ndarray:
        """Per-edge values of the primary storage (ones when unweighted)."""
        return edge_values(self.any_storage())

    def with_values(self, values: np.ndarray) -> "Matrix":
        """Same topology, new per-edge values (order of primary storage)."""
        values = np.asarray(values)
        if values.shape != (self.nnz,):
            raise ShapeError(
                f"values shape {values.shape} != nnz ({self.nnz},)"
            )
        from repro.sparse.kernels import _with_values

        out = _with_values(self.any_storage(), values)
        return self._spawn(out)

    def nbytes(self) -> int:
        """Total bytes across all materialized layouts."""
        return sum(s.nbytes() for s in self._storages.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Matrix(shape={self.shape}, nnz={self.nnz}, "
            f"layouts={self.available_layouts})"
        )

    # ------------------------------------------------------------------
    # Extract step
    # ------------------------------------------------------------------
    def __getitem__(self, key: object) -> "Matrix":
        """``A[:, cols]`` and ``A[rows, :]`` slicing; also ``A[rows, cols]``."""
        if not isinstance(key, tuple) or len(key) != 2:
            raise ShapeError("matrix slicing requires A[rows, cols] syntax")
        row_key, col_key = key
        result = self
        if not _is_full_slice(col_key):
            result = result.slice_cols(as_index_array(col_key))
        if not _is_full_slice(row_key):
            result = result.slice_rows(as_index_array(row_key))
        if _is_full_slice(row_key) and _is_full_slice(col_key):
            return self
        return result

    def slice_cols(self, cols: np.ndarray, layout: str | None = None) -> "Matrix":
        """``A[:, cols]`` — the in-neighbor subgraph of ``cols``.

        ``cols`` are *original* node ids when the matrix has no col map,
        otherwise local column positions.
        """
        from repro.sparse import slice_columns

        cols = as_index_array(cols)
        src = self.get(layout) if layout else self.get(self._slice_col_layout())
        out = slice_columns(src, cols, self.ctx, graph_read=self.is_base_graph)
        new_col_ids = cols if self.col_ids is None else self.col_ids[cols]
        return self._spawn(out, col_ids=new_col_ids)

    def slice_rows(self, rows: np.ndarray, layout: str | None = None) -> "Matrix":
        """``A[rows, :]`` — the out-neighbor subgraph of ``rows``."""
        from repro.sparse import slice_rows

        rows = as_index_array(rows)
        src = self.get(layout) if layout else self.get(self._slice_row_layout())
        out = slice_rows(src, rows, self.ctx, graph_read=self.is_base_graph)
        new_row_ids = rows if self.row_ids is None else self.row_ids[rows]
        return self._spawn(out, row_ids=new_row_ids)

    def _slice_col_layout(self) -> str:
        return "csc" if "csc" in self._storages else self.any_storage().layout

    def _slice_row_layout(self) -> str:
        return "csr" if "csr" in self._storages else self.any_storage().layout

    # ------------------------------------------------------------------
    # Compute step
    # ------------------------------------------------------------------
    def _map_scalar(self, op: str, other: object) -> "Matrix":
        from repro.sparse import map_edges_combine, map_edges_scalar

        if isinstance(other, Matrix):
            out = map_edges_combine(
                self.any_storage(), op, other.any_storage(), self.ctx
            )
        else:
            out = map_edges_scalar(self.any_storage(), op, float(other), self.ctx)  # type: ignore[arg-type]
        return self._spawn(out)

    def __add__(self, other: object) -> "Matrix":
        return self._map_scalar("add", other)

    def __sub__(self, other: object) -> "Matrix":
        return self._map_scalar("sub", other)

    def __mul__(self, other: object) -> "Matrix":
        return self._map_scalar("mul", other)

    def __truediv__(self, other: object) -> "Matrix":
        return self._map_scalar("div", other)

    def __pow__(self, other: object) -> "Matrix":
        return self._map_scalar("pow", other)

    def __radd__(self, other: object) -> "Matrix":
        return self._map_scalar("add", other)

    def __rmul__(self, other: object) -> "Matrix":
        return self._map_scalar("mul", other)

    def add(self, vector: np.ndarray, axis: int = 0) -> "Matrix":
        """Broadcast add: edge ``(u, v)`` += ``vector[u]`` (axis 0) or ``[v]``."""
        return self._broadcast("add", vector, axis)

    def sub(self, vector: np.ndarray, axis: int = 0) -> "Matrix":
        """Broadcast subtract along ``axis``."""
        return self._broadcast("sub", vector, axis)

    def mul(self, vector: np.ndarray, axis: int = 0) -> "Matrix":
        """Broadcast multiply along ``axis``."""
        return self._broadcast("mul", vector, axis)

    def div(self, vector: np.ndarray, axis: int = 0) -> "Matrix":
        """Broadcast divide along ``axis``."""
        return self._broadcast("div", vector, axis)

    def _broadcast(self, op: str, vector: np.ndarray, axis: int) -> "Matrix":
        from repro.sparse import map_edges_broadcast

        out = map_edges_broadcast(
            self.any_storage(), op, np.asarray(vector), axis, self.ctx
        )
        return self._spawn(out)

    def sum(self, axis: int = 0, layout: str | None = None) -> np.ndarray:
        """Per-row (axis 0) or per-column (axis 1) edge-value sums."""
        return self._reduce("sum", axis, layout)

    def mean(self, axis: int = 0, layout: str | None = None) -> np.ndarray:
        """Per-row / per-column means (0 for empty rows/columns)."""
        return self._reduce("mean", axis, layout)

    def max(self, axis: int = 0, layout: str | None = None) -> np.ndarray:
        """Per-row / per-column maxima (-inf for empty)."""
        return self._reduce("max", axis, layout)

    def min(self, axis: int = 0, layout: str | None = None) -> np.ndarray:
        """Per-row / per-column minima (+inf for empty)."""
        return self._reduce("min", axis, layout)

    def _reduce(self, op: str, axis: int, layout: str | None) -> np.ndarray:
        from repro.sparse import reduce_cols, reduce_rows

        if axis == 0:
            src = self.get(layout) if layout else self._reduce_rows_source()
            return reduce_rows(src, op, self.ctx)
        if axis == 1:
            src = self.get(layout) if layout else self._reduce_cols_source()
            return reduce_cols(src, op, self.ctx)
        raise ShapeError(f"reduce axis must be 0 or 1, got {axis}")

    def _reduce_rows_source(self) -> SparseFormat:
        if "csr" in self._storages:
            return self._storages["csr"]
        return self.any_storage()

    def _reduce_cols_source(self) -> SparseFormat:
        if "csc" in self._storages:
            return self._storages["csc"]
        return self.any_storage()

    def __matmul__(self, dense: np.ndarray) -> np.ndarray:
        """``A @ D`` — SpMM against a dense matrix/vector."""
        from repro.sparse import spmm

        return spmm(self.any_storage(), np.asarray(dense), self.ctx)

    def sddmm(self, row_feats: np.ndarray, col_feats: np.ndarray) -> "Matrix":
        """Per-edge inner products of endpoint features (PASS attention)."""
        from repro.sparse import sddmm_dot

        out = sddmm_dot(
            self.any_storage(), np.asarray(row_feats), np.asarray(col_feats), self.ctx
        )
        return self._spawn(out)

    def relu(self) -> "Matrix":
        """Element-wise ReLU on edge values."""
        return self._unary("relu")

    def exp(self) -> "Matrix":
        """Element-wise exp on edge values."""
        return self._unary("exp")

    def log(self) -> "Matrix":
        """Element-wise log on edge values."""
        return self._unary("log")

    def _unary(self, op: str) -> "Matrix":
        from repro.sparse import map_edges_unary

        out = map_edges_unary(self.any_storage(), op, self.ctx)
        return self._spawn(out)

    # ------------------------------------------------------------------
    # Select step
    # ------------------------------------------------------------------
    def individual_sample(
        self,
        k: int,
        probs: "Matrix | np.ndarray | None" = None,
        *,
        replace: bool = False,
        rng: np.random.Generator | None = None,
    ) -> "Matrix":
        """Node-wise sampling: each frontier column keeps up to ``k`` edges."""
        raw_probs: SparseFormat | np.ndarray | None
        if isinstance(probs, Matrix):
            raw_probs = probs.get("csc")
        else:
            raw_probs = probs
        out = sampling.individual_sample(
            self.get("csc"), k, raw_probs, replace=replace, rng=rng, ctx=self.ctx
        )
        return self._spawn(out)

    def labor_sample(
        self,
        k: int,
        *,
        rng: np.random.Generator | None = None,
    ) -> "Matrix":
        """LABOR variance-reduced sampling: correlated per-row coins,
        Horvitz–Thompson edge weights, same per-edge marginals as
        ``individual_sample(k)`` but smaller union frontiers."""
        out = sampling.labor_sample(self.get("csc"), k, rng=rng, ctx=self.ctx)
        return self._spawn(out)

    def collective_sample(
        self,
        k: int,
        node_probs: np.ndarray | None = None,
        *,
        replace: bool = False,
        rng: np.random.Generator | None = None,
    ) -> "Matrix":
        """Layer-wise sampling: keep ``k`` row nodes jointly, compacted."""
        result = sampling.collective_sample(
            self.get("csc"), k, node_probs, replace=replace, rng=rng, ctx=self.ctx
        )
        selected_local = result.selected_rows
        new_row_ids = (
            selected_local if self.row_ids is None else self.row_ids[selected_local]
        )
        return self._spawn(result.matrix, row_ids=new_row_ids)

    # ------------------------------------------------------------------
    # Finalize step
    # ------------------------------------------------------------------
    def row(self) -> np.ndarray:
        """Original ids of this matrix's row nodes.

        For a compacted matrix this is its explicit row set; otherwise the
        (sorted, deduplicated) rows that carry at least one edge — exactly
        the candidates a finalize step promotes to next-layer frontiers.
        """
        if self.row_ids is not None:
            return self.row_ids
        from repro.sparse import occupied_rows

        return occupied_rows(self.any_storage(), self.ctx)

    def column(self) -> np.ndarray:
        """Original ids of this matrix's column (frontier) nodes."""
        if self.col_ids is not None:
            return self.col_ids
        return np.arange(self.shape[1], dtype=INDEX_DTYPE)

    def compact(self, axis: int = 0) -> "Matrix":
        """Drop isolated rows (axis 0) or columns (axis 1), keeping id maps."""
        if axis == 0:
            result = compact_rows(self.any_storage(), self.ctx)
            assert result.row_ids is not None
            new_row_ids = (
                result.row_ids
                if self.row_ids is None
                else self.row_ids[result.row_ids]
            )
            return self._spawn(result.matrix, row_ids=new_row_ids)
        if axis == 1:
            from repro.sparse import compact_cols

            result = compact_cols(self.any_storage(), self.ctx)
            assert result.col_ids is not None
            new_col_ids = (
                result.col_ids
                if self.col_ids is None
                else self.col_ids[result.col_ids]
            )
            return self._spawn(result.matrix, col_ids=new_col_ids)
        raise ShapeError(f"compact axis must be 0 or 1, got {axis}")

    # ------------------------------------------------------------------
    # Export / interop
    # ------------------------------------------------------------------
    def to_coo_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(src, dst, weight)`` arrays in *original* node ids.

        This is the basis of the ``to_dgl_graph`` / ``to_pyg_graph``
        converters: the edge ``A[u, v]`` becomes ``src=u, dst=v``.
        """
        coo = self.get("coo")
        rows = coo.rows if self.row_ids is None else self.row_ids[coo.rows]
        cols = coo.cols if self.col_ids is None else self.col_ids[coo.cols]
        return rows, cols, edge_values(coo)

    def edge_ids(self) -> np.ndarray:
        """Original-graph edge ids of this matrix's edges."""
        from repro.sparse import edge_ids_or_identity

        return edge_ids_or_identity(self.any_storage())


def _is_full_slice(key: object) -> bool:
    return isinstance(key, slice) and key == slice(None)


def from_edges(
    src: Sequence[int] | np.ndarray,
    dst: Sequence[int] | np.ndarray,
    num_nodes: int,
    *,
    weights: np.ndarray | None = None,
    layout: str = "csc",
    ctx: ExecutionContext = NULL_CONTEXT,
    is_base_graph: bool = True,
) -> Matrix:
    """Build a square graph matrix from ``src -> dst`` edge arrays.

    The matrix entry for edge ``u -> v`` is ``A[u, v]``, so frontier
    in-neighborhoods are column slices, matching the paper.  The graph is
    stored in ``layout`` (CSC by default, the best format for the extract
    step — the choice DGL/PyG and gSampler all make for the input graph).
    """
    from repro.sparse import COO

    src_arr = as_index_array(np.asarray(src))
    dst_arr = as_index_array(np.asarray(dst))
    coo = COO(
        rows=src_arr,
        cols=dst_arr,
        values=None if weights is None else np.asarray(weights),
        shape=(num_nodes, num_nodes),
        edge_ids=np.arange(len(src_arr), dtype=INDEX_DTYPE),
    )
    storage = convert(coo, layout)
    return Matrix(storage, ctx=ctx, is_base_graph=is_base_graph)
