"""Root pytest configuration: verification options and markers.

Lives at the repository root (an *initial* conftest) so that
``pytest_addoption`` is registered before any test module is collected,
regardless of which directory pytest is invoked from.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--repro-seed",
        type=int,
        default=None,
        help=(
            "root seed for the statistical verification tests; failing "
            "tests print the seed they ran with so the failure can be "
            "reproduced exactly with this option"
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow_statistical: statistical verification tests that sweep the "
        "full optimization grid; run with reduced trials by default and "
        "full trials in the nightly CI job (REPRO_VERIFY_TRIALS)",
    )


@pytest.fixture(scope="session")
def repro_seed(request: pytest.FixtureRequest) -> int:
    """Root seed for statistical tests (``--repro-seed`` to override).

    The default is fixed, not random, so tier-1 p-values are
    deterministic; failures report the seed for exact reproduction.
    """
    opt = request.config.getoption("--repro-seed")
    return 20230717 if opt is None else int(opt)  # gSampler SOSP deadline


@pytest.fixture(scope="session")
def verify_trials() -> int:
    """Per-variant trial count for statistical verification.

    Reduced by default to keep the suite fast; the nightly CI job raises
    it via the ``REPRO_VERIFY_TRIALS`` environment variable.
    """
    return int(os.environ.get("REPRO_VERIFY_TRIALS", "80"))
